(* A mapping: the output of the mapping process.

   "The mapping of a CGRA is actually equivalent to identifying the
   spatial and temporal coordinates of every node and arc in the
   control/data flow graph" [3].  Nodes get a (PE, cycle) binding; arcs
   get a route: a sequence of one-cycle hops (Route operations that
   occupy an FU) and register-file holds (that occupy an RF entry and
   move the value in time without moving it in space).

   Timing model (single-cycle PEs, shared by router/checker/simulator):
   an op issued at (p, t) reads its operands during cycle t — from a
   neighbour's or its own output register written at end of t-1, from
   its own RF, or from the immediate field — and its result is readable
   from cycle t + latency. *)

type step =
  | Hop of { pe : int; time : int }
      (* a Route operation on [pe] at absolute cycle [time]; it reads
         the value from the current holder's output register (or own
         RF when preceded by a Hold on the same PE) and re-emits it *)
  | Hold of { pe : int; from_ : int; until : int }
      (* an RF entry on [pe] keeps the value; written at the end of
         cycle [from_], read during cycle [until] *)

type route = step list

type t = {
  ii : int; (* 1 for spatial mappings *)
  binding : (int * int) array; (* node id -> (pe, cycle) *)
  routes : route array; (* one per DFG edge, in Dfg.edges order *)
}

let pe_of t v = fst t.binding.(v)
let time_of t v = snd t.binding.(v)

let schedule_length t =
  Array.fold_left (fun acc (_, time) -> max acc (time + 1)) 0 t.binding

let route_hops route =
  List.length (List.filter (function Hop _ -> true | Hold _ -> false) route)

let route_hold_cycles route =
  List.fold_left
    (fun acc s -> match s with Hold { from_; until; _ } -> acc + (until - from_) | Hop _ -> acc)
    0 route

let total_route_hops t = Array.fold_left (fun acc r -> acc + route_hops r) 0 t.routes
let total_hold_cycles t = Array.fold_left (fun acc r -> acc + route_hold_cycles r) 0 t.routes

let step_to_string = function
  | Hop { pe; time } -> Printf.sprintf "hop(pe%d@%d)" pe time
  | Hold { pe; from_; until } -> Printf.sprintf "hold(pe%d,%d..%d)" pe from_ until

(* Render the schedule as a grid: rows = cycles 0..II-1 (the repeating
   kernel), columns = PEs; cells show the op scheduled there, as in the
   modulo-scheduling picture of Fig. 3. *)
let to_grid t (dfg : Ocgra_dfg.Dfg.t) (cgra : Ocgra_arch.Cgra.t) =
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let grid = Array.make_matrix t.ii npe "." in
  Array.iteri
    (fun v (pe, time) ->
      let slot = time mod t.ii in
      grid.(slot).(pe) <-
        Printf.sprintf "%s@%d" (Ocgra_dfg.Op.to_string (Ocgra_dfg.Dfg.op dfg v)) time)
    t.binding;
  Array.iter
    (fun route ->
      List.iter
        (function
          | Hop { pe; time } ->
              let slot = time mod t.ii in
              if grid.(slot).(pe) = "." then grid.(slot).(pe) <- Printf.sprintf "route@%d" time
          | Hold _ -> ())
        route)
    t.routes;
  let headers =
    Array.append [| "slot" |]
      (Array.init npe (fun i ->
           let r, c = Ocgra_arch.Cgra.coords cgra i in
           Printf.sprintf "PE(%d,%d)" r c))
  in
  let rows =
    List.init t.ii (fun s ->
        Array.append [| string_of_int s |] (Array.map (fun cell -> cell) grid.(s)))
  in
  Ocgra_util.Table.render ~headers rows

let to_string t dfg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "II = %d\n" t.ii);
  Array.iteri
    (fun v (pe, time) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> PE %d @ cycle %d\n"
           (Ocgra_dfg.Op.to_string (Ocgra_dfg.Dfg.op dfg v))
           pe time))
    t.binding;
  List.iteri
    (fun i (e : Ocgra_dfg.Dfg.edge) ->
      match t.routes.(i) with
      | [] -> ()
      | route ->
          Buffer.add_string buf
            (Printf.sprintf "  edge %d->%d: %s\n" e.src e.dst
               (String.concat " " (List.map step_to_string route))))
    (Ocgra_dfg.Dfg.edges dfg);
  Buffer.contents buf

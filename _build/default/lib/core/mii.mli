(** Minimum initiation interval bounds: no modulo schedule can beat
    max(ResMII, RecMII), which is what gives the exact mappers their
    optimality certificates. *)

(** Resource bound: per functional class, ops needing it over PEs
    providing it (also the total-ops / total-PEs pressure);
    [max_int] when some class has no provider. *)
val res_mii : Ocgra_dfg.Dfg.t -> Ocgra_arch.Cgra.t -> int

(** Recurrence bound from the dependence cycles. *)
val rec_mii : Ocgra_dfg.Dfg.t -> int

val mii : Ocgra_dfg.Dfg.t -> Ocgra_arch.Cgra.t -> int

(* Quality metrics of a valid mapping.

   The survey's figure of merit for temporal mapping is the II ("the
   quest of the minimum II is the main motivation of many works");
   schedule length matters for spatial pipelines and for loop prologue
   cost; routing volume and utilization feed the energy proxy. *)

open Ocgra_arch

type t = {
  ii : int;
  schedule_length : int;
  route_hops : int;
  hold_cycles : int;
  fu_utilization : float; (* used FU slots / (PE count * II) *)
  ops : int;
}

let of_mapping (p : Problem.t) (m : Mapping.t) =
  let npe = Cgra.pe_count p.cgra in
  let used = Hashtbl.create 64 in
  Array.iter
    (fun (pe, time) -> Hashtbl.replace used (pe, ((time mod m.ii) + m.ii) mod m.ii) ())
    m.binding;
  Array.iter
    (fun route ->
      List.iter
        (function
          | Mapping.Hop { pe; time } ->
              Hashtbl.replace used (pe, ((time mod m.ii) + m.ii) mod m.ii) ()
          | Mapping.Hold _ -> ())
        route)
    m.routes;
  {
    ii = m.ii;
    schedule_length = Mapping.schedule_length m;
    route_hops = Mapping.total_route_hops m;
    hold_cycles = Mapping.total_hold_cycles m;
    fu_utilization = float_of_int (Hashtbl.length used) /. float_of_int (npe * m.ii);
    ops = Array.length m.binding;
  }

(* Steady-state throughput: iterations per cycle. *)
let throughput t = 1.0 /. float_of_int t.ii

let to_string c =
  Printf.sprintf "II=%d len=%d hops=%d holds=%d util=%.0f%%" c.ii c.schedule_length c.route_hops
    c.hold_cycles (100.0 *. c.fu_utilization)

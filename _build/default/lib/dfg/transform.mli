(** Middle-end passes: dead-code elimination, constant folding, common
    subexpression elimination, loop unrolling.  All passes preserve the
    interpreter semantics (property-tested). *)

(** Remove nodes that reach no side effect (Output/Store) through data
    dependences of any distance. *)
val dce : Dfg.t -> Dfg.t

(** Evaluate pure ops whose operands are all constants, then DCE. *)
val constant_fold : Dfg.t -> Dfg.t

(** Merge structurally identical pure nodes, then DCE. *)
val cse : Dfg.t -> Dfg.t

(** [unroll t u] replicates the body [u] times; Input/Output names gain
    [.k] suffixes, a dist-d edge from copy-space producer to consumer
    copy [k] becomes distance [(copy - (k - d)) / u]. *)
val unroll : Dfg.t -> int -> Dfg.t

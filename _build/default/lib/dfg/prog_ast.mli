(** Abstract syntax of the imperative mini-language front-end (the
    stand-in for the C front-ends of the surveyed compilers). *)

type expr =
  | Int of int
  | Var of string
  | Bin of Op.binop * expr * expr
  | Not of expr
  | Neg of expr
  | Select of expr * expr * expr  (** cond ? a : b *)
  | Read of string * expr  (** array element A\[e\] *)

type stmt =
  | Assign of string * expr
  | Write of string * expr * expr  (** A\[e1\] = e2 *)
  | Emit of string * expr  (** program output *)
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list  (** for v = lo to hi-1 *)

type t = stmt list

val expr_to_string : expr -> string

(** Variables read by an expression, appended to the accumulator. *)
val expr_uses : string list -> expr -> string list

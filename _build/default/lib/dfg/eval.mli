(** Reference interpreter for DFGs with loop-carried edges: the
    functional ground truth the cycle-accurate simulator is checked
    against.

    Within one iteration, nodes evaluate in topological order of the
    dist-0 edges; a dist-d operand reads the producer's value from
    iteration [i - d], or its initial value when [i < d]. *)

type env = {
  input : string -> int -> int;  (** stream name -> iteration -> value *)
  memory : (string, int array) Hashtbl.t;
}

(** Build an environment from named streams (indexed per iteration;
    the last element repeats for loop-invariant tails) and named
    memory arrays (copied). *)
val env_of_streams : ?memory:(string * int array) list -> (string * int array) list -> env

type result = {
  outputs : (string, int list) Hashtbl.t;  (** newest first; see {!output_stream} *)
  values : int array array;  (** [values.(iter).(node)] *)
}

(** Output values of one stream in iteration order. *)
val output_stream : result -> string -> int list

(** [run ~init t env ~iters] evaluates [iters] iterations; [init]
    supplies each node's iteration -1 value (default 0). Raises
    [Invalid_argument] on invalid or intra-iteration-cyclic graphs. *)
val run : ?init:(int -> int) -> Dfg.t -> env -> iters:int -> result

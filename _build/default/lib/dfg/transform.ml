(* Middle-end passes over DFGs: dead-code elimination, constant
   folding, common-subexpression elimination and loop unrolling.

   These are the "transformations, optimisations" of the compilation
   flow in Fig. 3; unrolling in particular is one of the classic
   techniques on the Fig. 4 timeline. *)

(* Rebuild a DFG keeping only the nodes in [keep] (a predicate);
   remaining nodes keep their relative order.  Returns the new graph
   and the old->new id mapping (-1 for dropped). *)
let filter_nodes t keep =
  let n = Dfg.node_count t in
  let remap = Array.make n (-1) in
  let out = Dfg.create () in
  Dfg.iter_nodes
    (fun nd -> if keep nd.Dfg.id then remap.(nd.id) <- Dfg.add ~name:nd.name out nd.op)
    t;
  Dfg.iter_edges
    (fun (e : Dfg.edge) ->
      if remap.(e.src) >= 0 && remap.(e.dst) >= 0 then
        Dfg.add_edge out ~src:remap.(e.src) ~dst:remap.(e.dst) ~port:e.port ~dist:e.dist)
    t;
  (out, remap)

(* Dead-code elimination: keep only nodes that reach a side effect
   (Output/Store) through data dependences of any distance. *)
let dce t =
  let n = Dfg.node_count t in
  let live = Array.make n false in
  let preds = Array.make n [] in
  Dfg.iter_edges (fun (e : Dfg.edge) -> preds.(e.dst) <- e.src :: preds.(e.dst)) t;
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      List.iter mark preds.(v)
    end
  in
  Dfg.iter_nodes (fun nd -> if Op.has_side_effect nd.op then mark nd.id) t;
  fst (filter_nodes t (fun v -> live.(v)))

(* Constant folding: evaluate pure ops whose operands are all Consts
   via dist-0 edges.  Iterates to a fixed point, then DCEs the dead
   constant producers. *)
let constant_fold t =
  let n = Dfg.node_count t in
  let value = Array.make n None in
  Dfg.iter_nodes
    (fun nd -> match nd.op with Op.Const c -> value.(nd.id) <- Some c | _ -> ())
    t;
  let order =
    match Ocgra_graph.Topo.sort (Dfg.to_digraph t) with
    | Some o -> o
    | None -> invalid_arg "Transform.constant_fold: cyclic dist-0 subgraph"
  in
  let operands = Array.make n [] in
  Dfg.iter_edges
    (fun (e : Dfg.edge) -> if e.dist = 0 then operands.(e.dst) <- e :: operands.(e.dst))
    t;
  let operands =
    Array.map (fun es -> List.sort (fun (a : Dfg.edge) b -> compare a.port b.port) es) operands
  in
  List.iter
    (fun v ->
      let args = List.map (fun (e : Dfg.edge) -> value.(e.src)) operands.(v) in
      let has_carried = List.exists (fun (e : Dfg.edge) -> e.dist > 0) (Dfg.in_edges t v) in
      if (not has_carried) && List.for_all Option.is_some args then begin
        let args = List.map Option.get args in
        match (Dfg.op t v, args) with
        | Op.Binop b, [ x; y ] -> value.(v) <- Some (Op.eval_binop b x y)
        | Op.Not, [ x ] -> value.(v) <- Some (lnot x)
        | Op.Neg, [ x ] -> value.(v) <- Some (-x)
        | Op.Select, [ c; x; y ] -> value.(v) <- Some (if c <> 0 then x else y)
        | Op.Route, [ x ] -> value.(v) <- Some x
        | _ -> ()
      end)
    order;
  (* Rewrite: replace folded nodes with Consts. *)
  let out = Dfg.create () in
  let remap = Array.make n (-1) in
  Dfg.iter_nodes
    (fun nd ->
      let op =
        match value.(nd.id) with
        | Some c when (match nd.op with Op.Const _ -> false | _ -> true) -> Op.Const c
        | _ -> nd.op
      in
      remap.(nd.id) <- Dfg.add ~name:nd.name out op)
    t;
  Dfg.iter_edges
    (fun (e : Dfg.edge) ->
      (* nodes folded to Const have arity 0: drop their operand edges *)
      if Op.arity (Dfg.op out remap.(e.dst)) > e.port then
        Dfg.add_edge out ~src:remap.(e.src) ~dst:remap.(e.dst) ~port:e.port ~dist:e.dist)
    t;
  dce out

(* CSE: merge structurally identical pure nodes (same op, same
   producers on same ports and distances), bottom-up. *)
let cse t =
  let n = Dfg.node_count t in
  let order =
    match Ocgra_graph.Topo.sort (Dfg.to_digraph t) with
    | Some o -> o
    | None -> invalid_arg "Transform.cse: cyclic dist-0 subgraph"
  in
  let repr = Array.init n (fun i -> i) in
  let table = Hashtbl.create 64 in
  let in_edges = Array.make n [] in
  Dfg.iter_edges (fun (e : Dfg.edge) -> in_edges.(e.dst) <- e :: in_edges.(e.dst)) t;
  List.iter
    (fun v ->
      let op = Dfg.op t v in
      let pure = (not (Op.has_side_effect op)) && (match op with Op.Load _ | Op.Input _ -> false | _ -> true) in
      let carried = List.exists (fun (e : Dfg.edge) -> e.dist > 0) in_edges.(v) in
      if pure && not carried then begin
        let sig_parts =
          List.map
            (fun (e : Dfg.edge) -> Printf.sprintf "%d:%d" e.port repr.(e.src))
            (List.sort (fun (a : Dfg.edge) b -> compare a.port b.port) in_edges.(v))
        in
        let key = Op.to_string op ^ "|" ^ String.concat "," sig_parts in
        match Hashtbl.find_opt table key with
        | Some w -> repr.(v) <- w
        | None -> Hashtbl.add table key v
      end)
    order;
  (* Keep representative nodes; rewire edges through repr. *)
  let keep = Array.make n false in
  Array.iteri (fun v r -> if r = v then keep.(v) <- true) repr;
  let out = Dfg.create () in
  let remap = Array.make n (-1) in
  Dfg.iter_nodes (fun nd -> if keep.(nd.id) then remap.(nd.id) <- Dfg.add ~name:nd.name out nd.op) t;
  let seen = Hashtbl.create 64 in
  Dfg.iter_edges
    (fun (e : Dfg.edge) ->
      if keep.(e.dst) then begin
        let key = (repr.(e.src), e.dst, e.port, e.dist) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Dfg.add_edge out ~src:remap.(repr.(e.src)) ~dst:remap.(e.dst) ~port:e.port ~dist:e.dist
        end
      end)
    t;
  dce out

(* Loop unrolling by factor [u]: u copies of every node; a dist-d edge
   from producer p to consumer c becomes, for consumer copy k, an edge
   from producer copy (k - d) mod u with new distance (d + u - 1 - k +
   ((k - d) mod u)) / u ... computed as: src iteration offset = k - d;
   copy = ((k - d) mod u + u) mod u; new dist = (copy - (k - d)) / u. *)
let unroll t u =
  if u < 1 then invalid_arg "Transform.unroll: factor must be >= 1";
  if u = 1 then t
  else begin
    let n = Dfg.node_count t in
    let out = Dfg.create () in
    let copy = Array.make_matrix u n (-1) in
    for k = 0 to u - 1 do
      Dfg.iter_nodes
        (fun nd ->
          let name = Printf.sprintf "%s.%d" nd.name k in
          let op =
            match nd.op with
            | Op.Output s -> Op.Output (Printf.sprintf "%s.%d" s k)
            | Op.Input s -> Op.Input (Printf.sprintf "%s.%d" s k)
            | op -> op
          in
          copy.(k).(nd.id) <- Dfg.add ~name out op)
        t
    done;
    for k = 0 to u - 1 do
      Dfg.iter_edges
        (fun (e : Dfg.edge) ->
          let src_iter = k - e.dist in
          let src_copy = ((src_iter mod u) + u) mod u in
          let new_dist = (src_copy - src_iter) / u in
          Dfg.add_edge out ~src:copy.(src_copy).(e.src) ~dst:copy.(k).(e.dst) ~port:e.port
            ~dist:new_dist)
        t
    done;
    out
  end

(* Lowering from the mini-language to CDFG and to loop-body DFGs.

   [to_cdfg] is the front-end proper: it produces the basic-block
   structure of Fig. 3 (entry, init, header, body, exit).  [loop_body_dfg]
   is the middle-end shortcut every modulo-scheduling paper applies to
   innermost loops: the straight-line loop body becomes a DFG whose
   use-before-def variables turn into distance-1 loop-carried edges. *)

open Prog_ast

(* ---------- Straight-line DFG builder with local value numbering ---------- *)

type operand = Now of int | Later of string (* carried variable resolved after the pass *)

type builder = {
  dfg : Dfg.t;
  mutable env : (string * int) list; (* variable -> producing node *)
  cse : (string, int) Hashtbl.t; (* value-number key -> node *)
  use_cse : bool; (* full predication disables sharing across branches *)
  mutable pending : (int * int * string) list; (* (node, port, carried var) *)
  defined : (string, unit) Hashtbl.t; (* variables assigned somewhere in the region *)
  inputs : (string, int) Hashtbl.t; (* dedup of Input nodes *)
}

let make_builder ?(cse = true) () =
  {
    dfg = Dfg.create ();
    env = [];
    cse = Hashtbl.create 32;
    use_cse = cse;
    pending = [];
    defined = Hashtbl.create 16;
    inputs = Hashtbl.create 16;
  }

let lookup_var b v =
  match List.assoc_opt v b.env with
  | Some n -> Now n
  | None ->
      if Hashtbl.mem b.defined v then Later v (* defined later in the body: loop-carried *)
      else begin
        match Hashtbl.find_opt b.inputs v with
        | Some n -> Now n
        | None ->
            let n = Dfg.input b.dfg v in
            Hashtbl.replace b.inputs v n;
            Now n
      end

let operand_key = function Now n -> Printf.sprintf "#%d" n | Later v -> "@" ^ v

(* Create a node with the given operands, CSE-ing pure ops whose
   operands are all resolved. *)
let emit_node b op args =
  let pure = b.use_cse && not (Op.has_side_effect op) in
  let loadish = match op with Op.Load _ -> true | _ -> false in
  let all_now = List.for_all (function Now _ -> true | Later _ -> false) args in
  let key =
    Printf.sprintf "%s(%s)" (Op.to_string op) (String.concat "," (List.map operand_key args))
  in
  match if pure && (not loadish) && all_now then Hashtbl.find_opt b.cse key else None with
  | Some n -> n
  | None ->
      let n = Dfg.add b.dfg op in
      List.iteri
        (fun port arg ->
          match arg with
          | Now src -> Dfg.add_edge b.dfg ~src ~dst:n ~port
          | Later v -> b.pending <- (n, port, v) :: b.pending)
        args;
      if pure && (not loadish) && all_now then Hashtbl.replace b.cse key n;
      n

let rec build_expr b e : operand =
  match e with
  | Int c -> Now (emit_node b (Op.Const c) [])
  | Var v -> lookup_var b v
  | Bin (op, x, y) ->
      let x = build_expr b x and y = build_expr b y in
      Now (emit_node b (Op.Binop op) [ x; y ])
  | Not e -> Now (emit_node b Op.Not [ build_expr b e ])
  | Neg e -> Now (emit_node b Op.Neg [ build_expr b e ])
  | Select (c, x, y) ->
      let c = build_expr b c and x = build_expr b x and y = build_expr b y in
      Now (emit_node b Op.Select [ c; x; y ])
  | Read (a, idx) -> Now (emit_node b (Op.Load a) [ build_expr b idx ])

let force b = function
  | Now n -> n
  | Later v ->
      (* Materialize a carried use through a Route node so it can be the
         target of the backpatched distance-1 edge. *)
      let n = Dfg.add b.dfg Op.Route in
      b.pending <- (n, 0, v) :: b.pending;
      n

let build_straight b stmts =
  List.iter
    (fun s ->
      match s with
      | Cdfg.S_assign (v, e) ->
          let n = force b (build_expr b e) in
          b.env <- (v, n) :: List.remove_assoc v b.env
      | Cdfg.S_write (a, idx, e) ->
          let idx = build_expr b idx and e = build_expr b e in
          ignore (emit_node b (Op.Store a) [ idx; e ])
      | Cdfg.S_emit (o, e) -> ignore (emit_node b (Op.Output o) [ Now (force b (build_expr b e)) ]))
    stmts

(* ---------- Loop-body DFG with loop-carried edges ---------- *)

type kernel = {
  dfg : Dfg.t;
  init : int -> int; (* initial value of each node's output (iteration -1) *)
  carried : (string * int) list; (* carried variable -> defining node *)
}

let straight_of_stmt s =
  match s with
  | Assign (v, e) -> [ Cdfg.S_assign (v, e) ]
  | Write (a, i, e) -> [ Cdfg.S_write (a, i, e) ]
  | Emit (o, e) -> [ Cdfg.S_emit (o, e) ]
  | If (c, t, f) ->
      (* If-conversion to Select on every assigned variable: the body of
         a kernel must be branch-free (the cf library offers richer
         predication schemes on full CDFGs). *)
      let assigned stmts =
        List.concat_map (function Assign (v, _) -> [ v ] | _ -> []) stmts
      in
      let vars = List.sort_uniq compare (assigned t @ assigned f) in
      let cond_var = "%ifc" in
      (* Simple scheme: compute both branches into temporaries, then
         select.  Reads inside branches refer to pre-branch values, so no
         renaming of uses is required when each branch assigns distinct
         temporaries. *)
      let lower_branch suffix stmts =
        List.concat_map
          (fun s ->
            match s with
            | Assign (v, e) -> [ Cdfg.S_assign (v ^ suffix, e) ]
            | Write _ | Emit _ ->
                invalid_arg "loop_body_dfg: side effects inside if require explicit Select"
            | If _ -> invalid_arg "loop_body_dfg: nested if not supported; use Select"
            | For _ -> invalid_arg "loop_body_dfg: nested loop in kernel body")
          stmts
      in
      [ Cdfg.S_assign (cond_var, c) ]
      @ lower_branch "%t" t
      @ lower_branch "%f" f
      @ List.map
          (fun v ->
            let then_e = if List.exists (function Assign (w, _) -> w = v | _ -> false) t then Var (v ^ "%t") else Var v in
            let else_e = if List.exists (function Assign (w, _) -> w = v | _ -> false) f then Var (v ^ "%f") else Var v in
            Cdfg.S_assign (v, Select (Var cond_var, then_e, else_e)))
          vars
  | For _ -> invalid_arg "loop_body_dfg: nested loops must be unrolled or tiled first"

(* [loop_body_dfg ~ivar ~lo body ~init] builds the kernel DFG of
   [for ivar = lo; ...; ivar++ { body }].  [init] gives the pre-loop
   value of each accumulator variable. *)
let loop_body_dfg ?(init = []) ?(cse = true) ?ivar ?(lo = 0) body =
  let body =
    match ivar with
    | Some v -> body @ [ Assign (v, Bin (Op.Add, Var v, Int 1)) ]
    | None -> body
  in
  let straight = List.concat_map straight_of_stmt body in
  let b = make_builder ~cse () in
  List.iter
    (function Cdfg.S_assign (v, _) -> Hashtbl.replace b.defined v () | _ -> ())
    straight;
  build_straight b straight;
  (* Backpatch carried uses: distance-1 edge from the final definition. *)
  let carried = Hashtbl.create 8 in
  List.iter
    (fun (node, port, v) ->
      match List.assoc_opt v b.env with
      | Some src ->
          Dfg.add_edge b.dfg ~src ~dst:node ~port ~dist:1;
          Hashtbl.replace carried v src
      | None -> invalid_arg (Printf.sprintf "loop_body_dfg: carried var %s never defined" v))
    b.pending;
  let init_tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun v src ->
      let value =
        match List.assoc_opt v init with
        | Some value -> value
        | None -> if Some v = ivar then lo else 0
      in
      Hashtbl.replace init_tbl src value)
    carried;
  (* The increment node computes ivar+1, so iteration -1 must present
     lo, meaning the node's init is lo... but the node output at
     iteration i is ivar(i)+1; for uses at iteration 0 to read lo the
     init of the defining node is exactly lo.  Same reasoning holds for
     accumulators: init = pre-loop value. *)
  let init n = match Hashtbl.find_opt init_tbl n with Some v -> v | None -> 0 in
  { dfg = b.dfg; init; carried = Hashtbl.fold (fun v n acc -> (v, n) :: acc) carried [] }

(* ---------- Structured lowering to CDFG (Fig. 3) ---------- *)

let to_cdfg (prog : t) =
  let cdfg = Cdfg.create () in
  let tmp_counter = ref 0 in
  let fresh_tmp () =
    incr tmp_counter;
    Printf.sprintf "%%c%d" !tmp_counter
  in
  let entry = Cdfg.add_block ~label:"BB0 (entry)" cdfg in
  let rec lower (cur : Cdfg.block) stmts : Cdfg.block =
    match stmts with
    | [] -> cur
    | Assign (v, e) :: rest ->
        cur.stmts <- cur.stmts @ [ Cdfg.S_assign (v, e) ];
        lower cur rest
    | Write (a, i, e) :: rest ->
        cur.stmts <- cur.stmts @ [ Cdfg.S_write (a, i, e) ];
        lower cur rest
    | Emit (o, e) :: rest ->
        cur.stmts <- cur.stmts @ [ Cdfg.S_emit (o, e) ];
        lower cur rest
    | If (c, then_s, else_s) :: rest ->
        let cv = fresh_tmp () in
        cur.stmts <- cur.stmts @ [ Cdfg.S_assign (cv, c) ];
        let bt = Cdfg.add_block cdfg and bf = Cdfg.add_block cdfg in
        cur.term <- Branch { cond = cv; if_true = bt.id; if_false = bf.id };
        let bt_end = lower bt then_s and bf_end = lower bf else_s in
        let join = Cdfg.add_block cdfg in
        bt_end.term <- Jump join.id;
        bf_end.term <- Jump join.id;
        lower join rest
    | For (v, lo, hi, body) :: rest ->
        cur.stmts <- cur.stmts @ [ Cdfg.S_assign (v, lo) ];
        let header = Cdfg.add_block cdfg in
        cur.term <- Jump header.id;
        let cv = fresh_tmp () in
        header.stmts <- [ Cdfg.S_assign (cv, Bin (Op.Lt, Var v, hi)) ];
        let body_b = Cdfg.add_block cdfg and exit_b = Cdfg.add_block cdfg in
        header.term <- Branch { cond = cv; if_true = body_b.id; if_false = exit_b.id };
        let body_end = lower body_b body in
        body_end.stmts <- body_end.stmts @ [ Cdfg.S_assign (v, Bin (Op.Add, Var v, Int 1)) ];
        body_end.term <- Jump header.id;
        lower exit_b rest
  in
  let last = lower entry prog in
  last.term <- Return;
  cdfg

(* Per-block DFG: Inputs for variables live into the block, Outputs for
   variables it defines (conservatively all of them). *)
let block_dfg (blk : Cdfg.block) =
  let b = make_builder () in
  build_straight b blk.stmts;
  assert (b.pending = []);
  (* no carried vars in a basic block *)
  List.iter (fun (v, n) -> ignore (Dfg.output b.dfg v n)) (List.rev b.env);
  b.dfg

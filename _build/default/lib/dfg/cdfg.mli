(** Control/Data Flow Graph: basic blocks of straight-line code joined
    by control edges (the Fig. 3 structure). *)

type terminator =
  | Jump of int
  | Branch of { cond : string; if_true : int; if_false : int }
      (** branch on variable value <> 0 *)
  | Return

type block = {
  id : int;
  label : string;
  mutable stmts : straight list;
  mutable term : terminator;
}

and straight =
  | S_assign of string * Prog_ast.expr
  | S_write of string * Prog_ast.expr * Prog_ast.expr
  | S_emit of string * Prog_ast.expr

type t

val create : unit -> t

(** Append an empty block (label defaults to BB<n>). *)
val add_block : ?label:string -> t -> block

(** Blocks in creation order (block 0 is the entry). *)
val blocks : t -> block list

val block_count : t -> int

(** Raises [Invalid_argument] on unknown ids. *)
val block : t -> int -> block

val successors : block -> int list

(** The control-flow graph over block ids. *)
val to_digraph : t -> Ocgra_graph.Digraph.t

val pp_terminator : terminator -> string
val to_string : t -> string

(* Abstract syntax of the imperative mini-language used as front-end.

   This stands in for the C front-ends (LLVM/SUIF) of the surveyed
   compilers: what the back-end consumes is the CDFG/DFG this language
   lowers to, so the mapping code paths are exercised identically. *)

type expr =
  | Int of int
  | Var of string
  | Bin of Op.binop * expr * expr
  | Not of expr
  | Neg of expr
  | Select of expr * expr * expr (* cond ? a : b *)
  | Read of string * expr (* array element A[e] *)

type stmt =
  | Assign of string * expr
  | Write of string * expr * expr (* A[e1] = e2 *)
  | Emit of string * expr (* program output *)
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list (* for v = lo to hi-1 *)

type t = stmt list

let rec expr_to_string = function
  | Int n -> string_of_int n
  | Var v -> v
  | Bin (b, x, y) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string x) (Op.binop_to_string b) (expr_to_string y)
  | Not e -> Printf.sprintf "(not %s)" (expr_to_string e)
  | Neg e -> Printf.sprintf "(- %s)" (expr_to_string e)
  | Select (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a) (expr_to_string b)
  | Read (a, e) -> Printf.sprintf "%s[%s]" a (expr_to_string e)

(* Variables read by an expression. *)
let rec expr_uses acc = function
  | Int _ -> acc
  | Var v -> v :: acc
  | Bin (_, x, y) -> expr_uses (expr_uses acc x) y
  | Not e | Neg e -> expr_uses acc e
  | Select (c, a, b) -> expr_uses (expr_uses (expr_uses acc c) a) b
  | Read (_, e) -> expr_uses acc e

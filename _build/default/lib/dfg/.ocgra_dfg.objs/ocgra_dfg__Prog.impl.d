lib/dfg/prog.ml: Cdfg Dfg Hashtbl List Op Printf Prog_ast String

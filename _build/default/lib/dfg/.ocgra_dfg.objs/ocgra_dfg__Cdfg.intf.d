lib/dfg/cdfg.mli: Ocgra_graph Prog_ast

lib/dfg/dfg.ml: Array Buffer Hashtbl List Ocgra_graph Op Printf

lib/dfg/prog.mli: Cdfg Dfg Prog_ast

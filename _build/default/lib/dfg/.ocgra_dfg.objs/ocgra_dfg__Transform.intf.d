lib/dfg/transform.mli: Dfg

lib/dfg/prog_ast.ml: Op Printf

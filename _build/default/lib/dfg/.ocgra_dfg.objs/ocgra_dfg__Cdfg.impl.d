lib/dfg/cdfg.ml: Buffer List Ocgra_graph Printf Prog_ast

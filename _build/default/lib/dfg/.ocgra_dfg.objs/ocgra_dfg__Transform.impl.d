lib/dfg/transform.ml: Array Dfg Hashtbl List Ocgra_graph Op Option Printf String

lib/dfg/op.ml: Printf

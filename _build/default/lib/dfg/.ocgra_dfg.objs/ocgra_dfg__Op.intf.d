lib/dfg/op.mli:

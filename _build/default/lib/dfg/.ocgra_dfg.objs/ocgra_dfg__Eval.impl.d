lib/dfg/eval.ml: Array Dfg Hashtbl List Ocgra_graph Op Option Printf

lib/dfg/dfg.mli: Ocgra_graph Op

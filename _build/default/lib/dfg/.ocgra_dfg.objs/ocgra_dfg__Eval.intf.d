lib/dfg/eval.mli: Dfg Hashtbl

lib/dfg/prog_ast.mli: Op

(* Control/Data Flow Graph: basic blocks of straight-line code joined
   by control edges (Fig. 3 of the paper: BB0 entry .. BB4 exit).

   Each block carries its statements in source form plus, once built, a
   per-block DFG whose Inputs/Outputs are the variables live across the
   block boundary.  Control-flow mapping strategies (host-managed
   execution, predication) consume this structure. *)

type terminator =
  | Jump of int
  | Branch of { cond : string; if_true : int; if_false : int } (* on variable value <> 0 *)
  | Return

type block = {
  id : int;
  label : string;
  mutable stmts : straight list;
  mutable term : terminator;
}

and straight =
  | S_assign of string * Prog_ast.expr
  | S_write of string * Prog_ast.expr * Prog_ast.expr
  | S_emit of string * Prog_ast.expr

type t = { mutable blocks : block list (* reversed *); mutable n : int }

let create () = { blocks = []; n = 0 }

let add_block ?(label = "") t =
  let id = t.n in
  let label = if label = "" then Printf.sprintf "BB%d" id else label in
  let b = { id; label; stmts = []; term = Return } in
  t.blocks <- b :: t.blocks;
  t.n <- id + 1;
  b

let blocks t = List.rev t.blocks
let block_count t = t.n

let block t id =
  match List.find_opt (fun b -> b.id = id) t.blocks with
  | Some b -> b
  | None -> invalid_arg "Cdfg.block: no such block"

let successors b =
  match b.term with
  | Jump j -> [ j ]
  | Branch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Return -> []

let to_digraph t =
  let g = Ocgra_graph.Digraph.create ~capacity:(max 1 t.n) () in
  ignore (Ocgra_graph.Digraph.add_nodes g t.n);
  List.iter (fun b -> List.iter (fun s -> Ocgra_graph.Digraph.add_edge g b.id s) (successors b)) (blocks t);
  g

let pp_terminator = function
  | Jump j -> Printf.sprintf "jump BB%d" j
  | Branch { cond; if_true; if_false } ->
      Printf.sprintf "branch %s ? BB%d : BB%d" cond if_true if_false
  | Return -> "return"

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" b.label);
      List.iter
        (fun s ->
          let line =
            match s with
            | S_assign (v, e) -> Printf.sprintf "  %s = %s" v (Prog_ast.expr_to_string e)
            | S_write (a, i, e) ->
                Printf.sprintf "  %s[%s] = %s" a (Prog_ast.expr_to_string i)
                  (Prog_ast.expr_to_string e)
            | S_emit (o, e) -> Printf.sprintf "  emit %s = %s" o (Prog_ast.expr_to_string e)
          in
          Buffer.add_string buf (line ^ "\n"))
        b.stmts;
      Buffer.add_string buf ("  " ^ pp_terminator b.term ^ "\n"))
    (blocks t);
  Buffer.contents buf

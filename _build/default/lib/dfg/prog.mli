(** Lowering from the mini-language: [to_cdfg] is the front-end proper
    (basic blocks, Fig. 3); [loop_body_dfg] is the middle-end shortcut
    every modulo-scheduling paper applies to innermost loops. *)

(** A loop kernel: its DFG, the iteration -1 value of every node (the
    accumulators' initial values), and the carried variables with their
    defining nodes. *)
type kernel = {
  dfg : Dfg.t;
  init : int -> int;
  carried : (string * int) list;
}

(** [loop_body_dfg ~init ~ivar ~lo body] builds the kernel of
    [for ivar = lo; ...; ivar++ { body }]: use-before-def variables
    that the body also assigns become distance-1 loop-carried edges;
    [init] gives accumulator pre-loop values; [If] statements are
    if-converted to [Select]s (side effects inside branches must be
    written with explicit [Select]s). *)
val loop_body_dfg :
  ?init:(string * int) list ->
  ?cse:bool ->
  ?ivar:string ->
  ?lo:int ->
  Prog_ast.stmt list ->
  kernel

(** Structured lowering to basic blocks: entry, loop pre-headers,
    headers with branch terminators, bodies, exits. *)
val to_cdfg : Prog_ast.t -> Cdfg.t

(** Per-block DFG: Inputs for live-in variables, Outputs for every
    variable the block assigns. *)
val block_dfg : Cdfg.block -> Dfg.t

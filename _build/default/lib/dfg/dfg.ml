(* Data-flow graph with loop-carried edge distances.

   Nodes are operations; an edge (src, dst, port, dist) says operand
   [port] of [dst] in iteration [i] is the value produced by [src] in
   iteration [i - dist].  dist = 0 edges are ordinary intra-iteration
   data dependences; dist >= 1 edges are the loop recurrences that
   bound the initiation interval from below (RecMII). *)

type node = { id : int; op : Op.t; name : string }
type edge = { src : int; dst : int; port : int; dist : int }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable edges_rev : edge list; (* reversed insertion order *)
  mutable n_edges : int;
}

let create () = { nodes = Array.make 8 { id = 0; op = Op.Nop; name = "" }; n = 0; edges_rev = []; n_edges = 0 }

let node_count t = t.n
let edge_count t = t.n_edges

let add ?name t op =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  let id = t.n in
  let name = match name with Some s -> s | None -> Printf.sprintf "n%d" id in
  t.nodes.(id) <- { id; op; name };
  t.n <- t.n + 1;
  id

let node t id =
  if id < 0 || id >= t.n then invalid_arg "Dfg.node: id out of range";
  t.nodes.(id)

let op t id = (node t id).op
let name t id = (node t id).name

let add_edge ?(dist = 0) ?(port = 0) t ~src ~dst =
  if src < 0 || src >= t.n then invalid_arg "Dfg.add_edge: src out of range";
  if dst < 0 || dst >= t.n then invalid_arg "Dfg.add_edge: dst out of range";
  if dist < 0 then invalid_arg "Dfg.add_edge: negative distance";
  t.edges_rev <- { src; dst; port; dist } :: t.edges_rev;
  t.n_edges <- t.n_edges + 1

let edges t = List.rev t.edges_rev
let iter_edges f t = List.iter f (edges t)

let in_edges t id = List.filter (fun e -> e.dst = id) (edges t)
let out_edges t id = List.filter (fun e -> e.src = id) (edges t)

let iter_nodes f t =
  for i = 0 to t.n - 1 do
    f t.nodes.(i)
  done

let fold_nodes f t acc =
  let acc = ref acc in
  iter_nodes (fun nd -> acc := f nd !acc) t;
  !acc

let nodes t = List.rev (fold_nodes (fun nd acc -> nd :: acc) t [])

(* Structural well-formedness: correct arity, one producer per input
   port, ports in range. Returns the list of problems (empty = ok). *)
let validate t =
  let problems = ref [] in
  let add_problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let in_ports = Hashtbl.create 64 in
  iter_edges
    (fun e ->
      let key = (e.dst, e.port) in
      (match Hashtbl.find_opt in_ports key with
      | Some _ -> add_problem "node %d port %d has multiple producers" e.dst e.port
      | None -> Hashtbl.add in_ports key e.src);
      let needed = Op.arity (op t e.dst) in
      if e.port < 0 || e.port >= needed then
        add_problem "node %d (%s) given operand on port %d but arity is %d" e.dst
          (Op.to_string (op t e.dst))
          e.port needed)
    t;
  iter_nodes
    (fun nd ->
      let needed = Op.arity nd.op in
      for p = 0 to needed - 1 do
        if not (Hashtbl.mem in_ports (nd.id, p)) then
          add_problem "node %d (%s) is missing operand on port %d" nd.id (Op.to_string nd.op) p
      done)
    t;
  List.rev !problems

let is_valid t = validate t = []

(* Digraph view over the intra-iteration (dist = 0) edges, with edge
   weight = producer latency; the basis of ASAP/ALAP and critical path. *)
let to_digraph t =
  let g = Ocgra_graph.Digraph.create ~capacity:(max 1 t.n) () in
  ignore (Ocgra_graph.Digraph.add_nodes g t.n);
  iter_edges
    (fun e ->
      if e.dist = 0 then
        Ocgra_graph.Digraph.add_edge ~weight:(Op.latency (op t e.src)) g e.src e.dst)
    t;
  g

(* Digraph over all edges regardless of distance (for SCC / RecMII). *)
let to_digraph_all t =
  let g = Ocgra_graph.Digraph.create ~capacity:(max 1 t.n) () in
  ignore (Ocgra_graph.Digraph.add_nodes g t.n);
  iter_edges (fun e -> Ocgra_graph.Digraph.add_edge ~weight:e.dist g e.src e.dst) t;
  g

let is_acyclic t = Ocgra_graph.Topo.is_dag (to_digraph t)

(* Earliest start times honouring dist = 0 dependences. *)
let asap t = Ocgra_graph.Topo.longest_from_sources (to_digraph t)

(* Latest start times for a schedule of the given length. *)
let alap t ~length =
  let to_sink = Ocgra_graph.Topo.longest_to_sinks (to_digraph t) in
  Array.map (fun d -> length - d) to_sink

let critical_path t = Ocgra_graph.Topo.critical_path (to_digraph t)

let mobility t =
  let asap = asap t and alap = alap t ~length:(critical_path t) in
  Array.init t.n (fun i -> alap.(i) - asap.(i))

(* Recurrence-constrained minimum initiation interval.

   An II is infeasible iff some dependence cycle has total latency
   greater than II times its total distance; equivalently the graph
   with edge weights (latency src - II * dist) has a positive cycle.
   We scan II upward and test with Bellman-Ford-style relaxation. *)
let rec_mii t =
  let has_positive_cycle ii =
    let n = t.n in
    let dist_arr = Array.make n 0 in
    let edges = edges t in
    let weight e = Op.latency (op t e.src) - (ii * e.dist) in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= n do
      changed := false;
      incr rounds;
      List.iter
        (fun e ->
          let cand = dist_arr.(e.src) + weight e in
          if cand > dist_arr.(e.dst) then begin
            dist_arr.(e.dst) <- cand;
            changed := true
          end)
        edges
    done;
    !changed
  in
  let max_ii = 1 + fold_nodes (fun nd acc -> acc + Op.latency nd.op) t 0 in
  let rec search ii = if ii >= max_ii || not (has_positive_cycle ii) then ii else search (ii + 1) in
  search 1

let to_dot ?(name = "dfg") t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  iter_nodes
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s: %s\"];\n" nd.id nd.name (Op.to_string nd.op)))
    t;
  iter_edges
    (fun e ->
      let attrs = if e.dist > 0 then Printf.sprintf " [style=dashed,label=\"d%d\"]" e.dist else "" in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" e.src e.dst attrs))
    t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Convenience builders used throughout kernels and tests. *)
let const t c = add t (Op.Const c)
let input t s = add ~name:s t (Op.Input s)
let output t s v =
  let o = add ~name:s t (Op.Output s) in
  add_edge t ~src:v ~dst:o ~port:0;
  o

let binop t b x y =
  let v = add t (Op.Binop b) in
  add_edge t ~src:x ~dst:v ~port:0;
  add_edge t ~src:y ~dst:v ~port:1;
  v

let unop t op x =
  let v = add t op in
  add_edge t ~src:x ~dst:v ~port:0;
  v

let select t c a b =
  let v = add t Op.Select in
  add_edge t ~src:c ~dst:v ~port:0;
  add_edge t ~src:a ~dst:v ~port:1;
  add_edge t ~src:b ~dst:v ~port:2;
  v

let load t arr idx =
  let v = add t (Op.Load arr) in
  add_edge t ~src:idx ~dst:v ~port:0;
  v

let store t arr idx value =
  let v = add t (Op.Store arr) in
  add_edge t ~src:idx ~dst:v ~port:0;
  add_edge t ~src:value ~dst:v ~port:1;
  v

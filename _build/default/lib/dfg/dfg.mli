(** Data-flow graph with loop-carried edge distances.

    An edge (src, dst, port, dist) says operand [port] of [dst] in
    iteration [i] is the value produced by [src] in iteration
    [i - dist]: [dist = 0] edges are intra-iteration dependences,
    [dist >= 1] edges are the loop recurrences that bound the
    initiation interval from below. *)

type node = { id : int; op : Op.t; name : string }
type edge = { src : int; dst : int; port : int; dist : int }
type t

val create : unit -> t
val node_count : t -> int
val edge_count : t -> int

(** Append an operation; returns its id. *)
val add : ?name:string -> t -> Op.t -> int

val node : t -> int -> node
val op : t -> int -> Op.t
val name : t -> int -> string

(** Raises [Invalid_argument] on bad endpoints or negative distance. *)
val add_edge : ?dist:int -> ?port:int -> t -> src:int -> dst:int -> unit

(** Edges in insertion order (the canonical edge indexing used by
    mappings). *)
val edges : t -> edge list

val iter_edges : (edge -> unit) -> t -> unit
val in_edges : t -> int -> edge list
val out_edges : t -> int -> edge list
val iter_nodes : (node -> unit) -> t -> unit
val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val nodes : t -> node list

(** Structural well-formedness: arity, one producer per port, port
    ranges. Empty list means valid. *)
val validate : t -> string list

val is_valid : t -> bool

(** Digraph over the dist-0 edges, weighted by producer latency. *)
val to_digraph : t -> Ocgra_graph.Digraph.t

(** Digraph over all edges, weighted by distance (for SCC/RecMII). *)
val to_digraph_all : t -> Ocgra_graph.Digraph.t

(** No intra-iteration cycles? *)
val is_acyclic : t -> bool

(** Earliest start times under dist-0 dependences. *)
val asap : t -> int array

(** Latest start times for a schedule of the given length. *)
val alap : t -> length:int -> int array

val critical_path : t -> int

(** ALAP - ASAP at the critical-path length. *)
val mobility : t -> int array

(** Recurrence-constrained minimum initiation interval: the smallest II
    such that no dependence cycle has latency exceeding II times its
    distance. *)
val rec_mii : t -> int

val to_dot : ?name:string -> t -> string

(** Convenience builders. *)

val const : t -> int -> int
val input : t -> string -> int

(** [output t name v] wires [v] into a fresh Output node. *)
val output : t -> string -> int -> int

val binop : t -> Op.binop -> int -> int -> int
val unop : t -> Op.t -> int -> int
val select : t -> int -> int -> int -> int
val load : t -> string -> int -> int
val store : t -> string -> int -> int -> int

(** Dense two-phase primal simplex with Bland's rule (cycling-immune):
    the LP relaxation engine under the branch & bound MILP solver.
    All structural variables are non-negative; bounds are rows. *)

type relation = Le | Ge | Eq

type problem = {
  n : int;  (** structural variables x_0..x_{n-1}, all >= 0 *)
  maximize : bool;
  objective : float array;  (** length [n] *)
  rows : (float array * relation * float) list;
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

val solve : problem -> outcome

lib/ilp/ilp.ml: Array Float Lp Sys

lib/ilp/model.mli: Ilp Lp

lib/ilp/ilp.mli: Lp

lib/ilp/lp.mli:

lib/ilp/model.ml: Array Float Ilp List Lp

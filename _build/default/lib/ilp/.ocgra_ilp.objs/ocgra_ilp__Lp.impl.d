lib/ilp/lp.ml: Array Float

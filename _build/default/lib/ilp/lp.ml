(* Dense two-phase primal simplex over floats.

   This is the LP relaxation engine under the branch-and-bound MILP
   solver that stands in for the commercial solvers used by the
   ILP-based mappers in the survey.  All structural variables are
   non-negative; upper bounds and general inequalities are rows.
   Bland's rule is used throughout: slower than Dantzig pricing but
   immune to cycling, which matters more here than speed because the
   mapping models are small and highly degenerate. *)

type relation = Le | Ge | Eq

type problem = {
  n : int; (* structural variables x_0 .. x_{n-1}, all >= 0 *)
  maximize : bool;
  objective : float array; (* length n *)
  rows : (float array * relation * float) list;
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-7

type tableau = {
  m : int; (* constraint rows *)
  cols : int; (* total columns excluding rhs *)
  a : float array array; (* m x (cols + 1); last column = rhs *)
  basis : int array; (* m basic column indices *)
  n_struct : int;
  n_artificial_start : int; (* columns >= this are artificial *)
}

let pivot t ~row ~col =
  let a = t.a in
  let piv = a.(row).(col) in
  let width = t.cols + 1 in
  let r = a.(row) in
  for j = 0 to width - 1 do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = a.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ri = a.(i) in
        for j = 0 to width - 1 do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Maximize c.x given the tableau in canonical feasible form.
   [allowed] masks columns that may enter the basis.
   Returns (value, reduced objective row) or None when unbounded. *)
let optimize t obj allowed =
  (* reduced cost row: z_j - c_j maintained explicitly *)
  let width = t.cols + 1 in
  let z = Array.make width 0.0 in
  (* z = sum over basic rows of c_basis * row - c *)
  for j = 0 to t.cols - 1 do
    z.(j) <- -.obj.(j)
  done;
  for i = 0 to t.m - 1 do
    let cb = obj.(t.basis.(i)) in
    if Float.abs cb > 0.0 then
      for j = 0 to width - 1 do
        z.(j) <- z.(j) +. (cb *. t.a.(i).(j))
      done
  done;
  let rec iterate () =
    (* Bland: entering column = smallest index with z_j < -eps *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.cols - 1 do
         if allowed.(j) && z.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Some z
    else begin
      let col = !entering in
      (* ratio test; Bland tie-break on smallest basis column *)
      let best_row = ref (-1) and best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > eps then begin
          let ratio = t.a.(i).(t.cols) /. aij in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := i
          end
        end
      done;
      if !best_row < 0 then None (* unbounded *)
      else begin
        let row = !best_row in
        pivot t ~row ~col;
        (* update z row *)
        let factor = z.(col) in
        if Float.abs factor > 0.0 then begin
          let r = t.a.(row) in
          for j = 0 to width - 1 do
            z.(j) <- z.(j) -. (factor *. r.(j))
          done
        end;
        iterate ()
      end
    end
  in
  iterate ()

let solve (p : problem) =
  let rows = Array.of_list p.rows in
  let m = Array.length rows in
  (* normalize rhs >= 0 *)
  let rows =
    Array.map
      (fun (coeffs, rel, b) ->
        if Array.length coeffs <> p.n then invalid_arg "Lp.solve: row width mismatch";
        if b < 0.0 then
          ( Array.map (fun c -> -.c) coeffs,
            (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (coeffs, rel, b))
      rows
  in
  let n_slack = Array.fold_left (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc) 0 rows in
  let n_art =
    Array.fold_left (fun acc (_, rel, _) -> match rel with Ge | Eq -> acc + 1 | Le -> acc) 0 rows
  in
  let cols = p.n + n_slack + n_art in
  let a = Array.make_matrix m (cols + 1) 0.0 in
  let basis = Array.make m 0 in
  let slack_idx = ref p.n and art_idx = ref (p.n + n_slack) in
  Array.iteri
    (fun i (coeffs, rel, b) ->
      Array.blit coeffs 0 a.(i) 0 p.n;
      a.(i).(cols) <- b;
      (match rel with
      | Le ->
          a.(i).(!slack_idx) <- 1.0;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Ge ->
          a.(i).(!slack_idx) <- -1.0;
          incr slack_idx;
          a.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx
      | Eq ->
          a.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx))
    rows;
  let t = { m; cols; a; basis; n_struct = p.n; n_artificial_start = p.n + n_slack } in
  let allowed = Array.make cols true in
  (* Phase 1: maximize -(sum of artificials) *)
  if n_art > 0 then begin
    let obj1 = Array.make cols 0.0 in
    for j = t.n_artificial_start to cols - 1 do
      obj1.(j) <- -1.0
    done;
    match optimize t obj1 allowed with
    | None -> invalid_arg "Lp.solve: phase 1 unbounded (impossible)"
    | Some _ ->
        let infeas = ref 0.0 in
        for i = 0 to m - 1 do
          if t.basis.(i) >= t.n_artificial_start then infeas := !infeas +. t.a.(i).(cols)
        done;
        if !infeas > 1e-6 then raise Exit
  end;
  (* forbid artificials from re-entering *)
  for j = t.n_artificial_start to cols - 1 do
    allowed.(j) <- false
  done;
  (* drive remaining basic artificials out where possible *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= t.n_artificial_start then begin
      let found = ref (-1) in
      (try
         for j = 0 to t.n_artificial_start - 1 do
           if Float.abs t.a.(i).(j) > eps then begin
             found := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !found >= 0 then pivot t ~row:i ~col:!found
      (* else: redundant row with zero rhs; harmless *)
    end
  done;
  (* Phase 2 *)
  let obj2 = Array.make cols 0.0 in
  for j = 0 to p.n - 1 do
    obj2.(j) <- (if p.maximize then p.objective.(j) else -.p.objective.(j))
  done;
  match optimize t obj2 allowed with
  | None -> Unbounded
  | Some _ ->
      let solution = Array.make p.n 0.0 in
      for i = 0 to m - 1 do
        if t.basis.(i) < p.n then solution.(t.basis.(i)) <- t.a.(i).(cols)
      done;
      let value = ref 0.0 in
      for j = 0 to p.n - 1 do
        value := !value +. (p.objective.(j) *. solution.(j))
      done;
      Optimal { value = !value; solution }

let solve p = try solve p with Exit -> Infeasible

(** Maximum common subgraph of two directed graphs via maximum clique
    of their modular product (the EPIMap-school formulation). *)

type pair = { a : int; b : int }

(** Build the modular product under a node-compatibility predicate. *)
val product : compatible:(int -> int -> bool) -> Digraph.t -> Digraph.t -> Clique.t * pair array

(** [solve ~compatible ga gb] returns the correspondence as (a, b)
    pairs plus whether the search proved maximality within the step
    budget. *)
val solve :
  ?max_steps:int ->
  compatible:(int -> int -> bool) ->
  Digraph.t ->
  Digraph.t ->
  (int * int) list * bool

(* Tarjan's strongly connected components.

   RecMII computation walks the SCCs of a loop-carried DFG: only nodes
   inside a non-trivial SCC participate in a recurrence cycle. *)

let compute g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Digraph.succ g v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !components

(* Components with more than one node, or a single node with a self
   edge: these are the recurrence circuits. *)
let nontrivial g =
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> Digraph.mem_edge g v v
      | _ :: _ :: _ -> true
      | [] -> false)
    (compute g)

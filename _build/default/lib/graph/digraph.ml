(* Growable directed graph over dense integer node ids.

   All graph-shaped structures in the framework (DFGs, MRRGs, product
   graphs, constraint graphs) are instances of this one representation,
   so the algorithm modules (Topo, Scc, Paths, Matching, Clique, Mcs,
   Iso) apply uniformly. Nodes are 0..n-1; parallel edges are allowed;
   each edge may carry an integer weight (default 1). *)

type edge = { src : int; dst : int; weight : int }

type t = {
  mutable succ : edge list array; (* outgoing edges per node *)
  mutable pred : edge list array; (* incoming edges per node *)
  mutable n : int;
}

let create ?(capacity = 8) () =
  let capacity = max capacity 1 in
  { succ = Array.make capacity []; pred = Array.make capacity []; n = 0 }

let node_count t = t.n

let ensure_capacity t needed =
  let cap = Array.length t.succ in
  if needed > cap then begin
    let cap' = max needed (2 * cap) in
    let succ = Array.make cap' [] and pred = Array.make cap' [] in
    Array.blit t.succ 0 succ 0 t.n;
    Array.blit t.pred 0 pred 0 t.n;
    t.succ <- succ;
    t.pred <- pred
  end

let add_node t =
  ensure_capacity t (t.n + 1);
  let id = t.n in
  t.n <- t.n + 1;
  id

let add_nodes t k =
  let first = t.n in
  ensure_capacity t (t.n + k);
  t.n <- t.n + k;
  first

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Digraph: node out of range"

let add_edge ?(weight = 1) t src dst =
  check_node t src;
  check_node t dst;
  let e = { src; dst; weight } in
  t.succ.(src) <- e :: t.succ.(src);
  t.pred.(dst) <- e :: t.pred.(dst)

let succ_edges t v =
  check_node t v;
  t.succ.(v)

let pred_edges t v =
  check_node t v;
  t.pred.(v)

let succ t v = List.rev_map (fun e -> e.dst) (succ_edges t v)
let pred t v = List.rev_map (fun e -> e.src) (pred_edges t v)

let out_degree t v = List.length (succ_edges t v)
let in_degree t v = List.length (pred_edges t v)

let mem_edge t src dst =
  check_node t src;
  List.exists (fun e -> e.dst = dst) t.succ.(src)

let edge_count t =
  let c = ref 0 in
  for v = 0 to t.n - 1 do
    c := !c + List.length t.succ.(v)
  done;
  !c

let iter_edges f t =
  for v = 0 to t.n - 1 do
    List.iter f (List.rev t.succ.(v))
  done

let fold_edges f t acc =
  let acc = ref acc in
  iter_edges (fun e -> acc := f e !acc) t;
  !acc

let edges t = List.rev (fold_edges (fun e acc -> e :: acc) t [])

let iter_nodes f t =
  for v = 0 to t.n - 1 do
    f v
  done

let reverse t =
  let r = create ~capacity:t.n () in
  ignore (add_nodes r t.n);
  iter_edges (fun e -> add_edge ~weight:e.weight r e.dst e.src) t;
  r

let copy t =
  let c = create ~capacity:(max 1 t.n) () in
  ignore (add_nodes c t.n);
  iter_edges (fun e -> add_edge ~weight:e.weight c e.src e.dst) t;
  c

(* Induced subgraph on the given nodes; returns the subgraph and the
   mapping old-id -> new-id (as a Hashtbl). *)
let induced t nodes =
  let map = Hashtbl.create (List.length nodes) in
  let g = create ~capacity:(max 1 (List.length nodes)) () in
  List.iter
    (fun v ->
      check_node t v;
      if not (Hashtbl.mem map v) then Hashtbl.add map v (add_node g))
    nodes;
  iter_edges
    (fun e ->
      match (Hashtbl.find_opt map e.src, Hashtbl.find_opt map e.dst) with
      | Some s, Some d -> add_edge ~weight:e.weight g s d
      | _ -> ())
    t;
  (g, map)

let to_dot ?(name = "g") ?(node_label = string_of_int) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  iter_nodes
    (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (node_label v)))
    t;
  iter_edges
    (fun e -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" e.src e.dst))
    t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Hopcroft-Karp maximum bipartite matching, used as a feasibility
    filter by binding algorithms. *)

type t

val create : n_left:int -> n_right:int -> t

(** Declare a compatible (left, right) pair. *)
val add_pair : t -> int -> int -> unit

(** Returns (size, match_left, match_right); -1 marks unmatched. *)
val solve : t -> int * int array * int array

val max_matching_size : t -> int

(** Every left vertex matched? *)
val has_perfect_left_matching : t -> bool

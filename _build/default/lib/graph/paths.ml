(* Shortest paths: BFS for unit weights, Dijkstra for non-negative
   integer weights, plus predecessor-based path extraction.  The MRRG
   router is a congestion-weighted Dijkstra over these primitives. *)

let unreachable = max_int

(* Breadth-first distances from [src]; [unreachable] where no path. *)
let bfs g src =
  let n = Digraph.node_count g in
  let dist = Array.make n unreachable in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) = unreachable then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Digraph.succ g v)
  done;
  dist

(* Dijkstra with per-edge weights given by [cost] (defaults to the
   stored weight); returns distances and a predecessor array for path
   reconstruction. *)
let dijkstra ?cost g src =
  let n = Digraph.node_count g in
  let cost = match cost with Some f -> f | None -> fun (e : Digraph.edge) -> e.weight in
  let dist = Array.make n unreachable in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let pq = Ocgra_util.Pqueue.create (-1) in
  dist.(src) <- 0;
  Ocgra_util.Pqueue.push pq 0 src;
  let rec drain () =
    match Ocgra_util.Pqueue.pop pq with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) && d = dist.(v) then begin
          settled.(v) <- true;
          List.iter
            (fun (e : Digraph.edge) ->
              let w = cost e in
              if w < 0 then invalid_arg "Paths.dijkstra: negative weight";
              if dist.(v) <> unreachable && dist.(v) + w < dist.(e.dst) then begin
                dist.(e.dst) <- dist.(v) + w;
                prev.(e.dst) <- v;
                Ocgra_util.Pqueue.push pq dist.(e.dst) e.dst
              end)
            (Digraph.succ_edges g v)
        end;
        drain ()
  in
  drain ();
  (dist, prev)

(* Reconstruct the node path src..dst from a predecessor array. *)
let extract_path prev ~src ~dst =
  let rec go v acc = if v = src then v :: acc else if v < 0 then [] else go prev.(v) (v :: acc) in
  match go dst [] with
  | [] -> None
  | path -> if List.hd path = src then Some path else None

(* All-pairs shortest hop counts (BFS from every node); used by the
   spatial mappers for distance tables over small PE arrays. *)
let all_pairs_hops g =
  let n = Digraph.node_count g in
  Array.init n (fun v -> bfs g v)

(** Subgraph isomorphism (VF2-style backtracking with degree pruning):
    an injective, edge-preserving embedding of the pattern into the
    host.  The graph-based binding mappers embed transformed DFGs into
    the time-extended CGRA with this. *)

(** [find ~compatible pattern host] returns the node mapping, or [None]
    when no embedding exists or the step budget ran out. *)
val find :
  ?max_steps:int -> compatible:(int -> int -> bool) -> Digraph.t -> Digraph.t -> int array option

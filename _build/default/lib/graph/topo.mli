(** Topological properties of DAGs; ASAP/ALAP scheduling of DFGs
    reduces to the longest-path computations here. *)

(** Kahn's algorithm; [None] when the graph has a cycle. *)
val sort : Digraph.t -> int list option

val is_dag : Digraph.t -> bool

(** Raises [Invalid_argument] on cyclic input. *)
val sort_exn : Digraph.t -> int list

(** Longest weighted path ending at each node (sources at 0). *)
val longest_from_sources : Digraph.t -> int array

(** Longest weighted path from each node to any sink. *)
val longest_to_sinks : Digraph.t -> int array

(** Length of the longest path (critical path in edge weights). *)
val critical_path : Digraph.t -> int

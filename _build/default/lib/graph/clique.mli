(** Maximum clique (Bron-Kerbosch with pivoting) over an undirected
    graph; compatibility-graph binding and the MCS product search run
    on this. *)

type t

val create : int -> t

(** Undirected edge; raises on self loops. *)
val add_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

(** Every arc of the digraph as an undirected edge. *)
val of_digraph_sym : Digraph.t -> t

(** [maximum t] returns (clique members sorted, proven); [proven] is
    false when the [max_steps] budget stopped the exact search, in
    which case the clique is the best found so far. *)
val maximum : ?max_steps:int -> t -> int list * bool

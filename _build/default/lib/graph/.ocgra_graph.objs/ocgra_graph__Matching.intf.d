lib/graph/matching.mli:

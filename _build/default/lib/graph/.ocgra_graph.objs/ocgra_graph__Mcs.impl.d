lib/graph/mcs.ml: Array Clique Digraph List

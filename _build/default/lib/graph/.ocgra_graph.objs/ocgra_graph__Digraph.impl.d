lib/graph/digraph.ml: Array Buffer Hashtbl List Printf

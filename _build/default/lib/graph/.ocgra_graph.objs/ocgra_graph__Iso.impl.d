lib/graph/iso.ml: Array Digraph List

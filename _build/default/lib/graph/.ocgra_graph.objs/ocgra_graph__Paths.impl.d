lib/graph/paths.ml: Array Digraph List Ocgra_util Queue

lib/graph/clique.mli: Digraph

lib/graph/clique.ml: Array Digraph List Ocgra_util

lib/graph/mcs.mli: Clique Digraph

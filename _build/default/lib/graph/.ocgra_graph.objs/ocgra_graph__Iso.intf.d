lib/graph/iso.mli: Digraph

(* Topological properties of DAGs: ordering, cycle detection, levels
   and longest paths.  ASAP/ALAP scheduling of DFGs reduces to longest
   paths here. *)

(* Kahn's algorithm; returns None if the graph has a cycle. *)
let sort g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Digraph.succ g v)
  done;
  if !count = n then Some (List.rev !order) else None

let is_dag g = sort g <> None

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

(* Longest path length (in total edge weight) ending at each node,
   sources at 0.  Fails on cyclic graphs. *)
let longest_from_sources g =
  let order = sort_exn g in
  let n = Digraph.node_count g in
  let dist = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun (e : Digraph.edge) -> dist.(e.dst) <- max dist.(e.dst) (dist.(v) + e.weight))
        (Digraph.succ_edges g v))
    order;
  dist

(* Longest path length from each node to any sink. *)
let longest_to_sinks g =
  let order = sort_exn g in
  let n = Digraph.node_count g in
  let dist = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun (e : Digraph.edge) -> dist.(v) <- max dist.(v) (dist.(e.dst) + e.weight))
        (Digraph.succ_edges g v))
    (List.rev order);
  dist

(* Length of the longest path in the DAG (critical path in edge weights). *)
let critical_path g =
  let dist = longest_from_sources g in
  Array.fold_left max 0 dist

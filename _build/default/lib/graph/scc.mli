(** Tarjan's strongly connected components; RecMII computations walk
    the SCCs of the loop-carried dependence graph. *)

(** All components, each as a node list. *)
val compute : Digraph.t -> int list list

(** Components with more than one node, or a self-looping single node:
    the recurrence circuits. *)
val nontrivial : Digraph.t -> int list list

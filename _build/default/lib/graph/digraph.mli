(** Growable directed graph over dense integer node ids.

    The single graph representation behind DFGs, MRRGs, product graphs
    and constraint graphs, so the algorithm modules apply uniformly.
    Nodes are [0..n-1]; parallel edges are allowed; each edge carries an
    integer weight (default 1). *)

type edge = { src : int; dst : int; weight : int }
type t

val create : ?capacity:int -> unit -> t
val node_count : t -> int

(** Appends a node and returns its id. *)
val add_node : t -> int

(** [add_nodes g k] appends [k] nodes, returning the first new id. *)
val add_nodes : t -> int -> int

(** Raises [Invalid_argument] when an endpoint is out of range. *)
val add_edge : ?weight:int -> t -> int -> int -> unit

val succ_edges : t -> int -> edge list
val pred_edges : t -> int -> edge list
val succ : t -> int -> int list
val pred : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val mem_edge : t -> int -> int -> bool
val edge_count : t -> int
val iter_edges : (edge -> unit) -> t -> unit
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> edge list
val iter_nodes : (int -> unit) -> t -> unit

(** All edges reversed. *)
val reverse : t -> t

val copy : t -> t

(** Induced subgraph on the listed nodes, with the old->new id map. *)
val induced : t -> int list -> t * (int, int) Hashtbl.t

(** Graphviz rendering; [node_label] defaults to the id. *)
val to_dot : ?name:string -> ?node_label:(int -> string) -> t -> string

(** Shortest paths: BFS for hop counts, Dijkstra for non-negative
    weights, and path extraction. *)

(** Distance marker for unconnected pairs. *)
val unreachable : int

(** Hop distances from [src]. *)
val bfs : Digraph.t -> int -> int array

(** [dijkstra g src] returns (distances, predecessors); [cost]
    overrides the stored edge weights. Raises on negative weights. *)
val dijkstra : ?cost:(Digraph.edge -> int) -> Digraph.t -> int -> int array * int array

(** Rebuild the node path from a predecessor array; [None] when [dst]
    was not reached. *)
val extract_path : int array -> src:int -> dst:int -> int list option

(** BFS from every node: the hop table used by the spatial mappers. *)
val all_pairs_hops : Digraph.t -> int array array

(* Maximum common subgraph between two directed, labelled graphs,
   computed as a maximum clique of the modular product graph.

   EPIMap-style binding looks for the maximum common subgraph between
   the (transformed) DFG and the time-extended CGRA graph: a common
   subgraph covering every DFG node is exactly a binding in which every
   data dependence rides a physical link. *)

type pair = { a : int; b : int }

(* [compatible a b] says node [a] of graph [ga] may be identified with
   node [b] of [gb] (label compatibility). The product graph connects
   (a1,b1)-(a2,b2) when the a-side and b-side relations agree:
   edge a1->a2 iff edge b1->b2, and a1<>a2, b1<>b2. *)
let product ~compatible ga gb =
  let pairs = ref [] in
  for a = Digraph.node_count ga - 1 downto 0 do
    for b = Digraph.node_count gb - 1 downto 0 do
      if compatible a b then pairs := { a; b } :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let n = Array.length pairs in
  let cg = Clique.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = pairs.(i) and q = pairs.(j) in
      if p.a <> q.a && p.b <> q.b then begin
        let fwd_a = Digraph.mem_edge ga p.a q.a and fwd_b = Digraph.mem_edge gb p.b q.b in
        let bwd_a = Digraph.mem_edge ga q.a p.a and bwd_b = Digraph.mem_edge gb q.b p.b in
        if fwd_a = fwd_b && bwd_a = bwd_b then Clique.add_edge cg i j
      end
    done
  done;
  (cg, pairs)

(* Returns the common-subgraph correspondence as (a, b) pairs and
   whether the search completed (proved maximum). *)
let solve ?max_steps ~compatible ga gb =
  let cg, pairs = product ~compatible ga gb in
  let clique, proven = Clique.maximum ?max_steps cg in
  (List.map (fun i -> (pairs.(i).a, pairs.(i).b)) clique, proven)

(* Maximum clique via Bron-Kerbosch with pivoting, over an undirected
   graph given as a symmetric adjacency matrix of bitsets.

   RAMP-style binding builds a compatibility graph whose maximum clique
   is a consistent binding; EPIMap-style maximum common subgraph runs
   this same search on a modular product graph (see Mcs). *)

module Bitset = Ocgra_util.Bitset

type t = { n : int; adj : Bitset.t array }

let create n = { n; adj = Array.init n (fun _ -> Bitset.create n) }

let add_edge t i j =
  if i = j then invalid_arg "Clique.add_edge: self loop";
  Bitset.add t.adj.(i) j;
  Bitset.add t.adj.(j) i

let mem_edge t i j = Bitset.mem t.adj.(i) j

let of_digraph_sym g =
  (* Treats every arc of the digraph as an undirected edge. *)
  let n = Digraph.node_count g in
  let t = create n in
  Digraph.iter_edges (fun (e : Digraph.edge) -> if e.src <> e.dst then add_edge t e.src e.dst) g;
  t

(* Bron-Kerbosch with pivot; [max_steps] bounds the number of recursive
   expansions so the exact search degrades gracefully on big product
   graphs (it then returns the best clique found so far, flagged as not
   proven maximum). *)
let maximum ?(max_steps = 1_000_000) t =
  let best = ref [] in
  let best_size = ref 0 in
  let steps = ref 0 in
  let exceeded = ref false in
  let rec bk r p x =
    incr steps;
    if !steps > max_steps then exceeded := true
    else if Bitset.is_empty p && Bitset.is_empty x then begin
      let size = List.length r in
      if size > !best_size then begin
        best_size := size;
        best := r
      end
    end
    else begin
      (* Pivot: vertex of P union X with most neighbours in P. *)
      let pivot = ref (-1) and pivot_deg = ref (-1) in
      let consider u =
        let tmp = Bitset.copy p in
        Bitset.inter_into ~src:t.adj.(u) ~dst:tmp;
        let d = Bitset.cardinal tmp in
        if d > !pivot_deg then begin
          pivot_deg := d;
          pivot := u
        end
      in
      Bitset.iter consider p;
      Bitset.iter consider x;
      let candidates = Bitset.copy p in
      if !pivot >= 0 then Bitset.diff_into ~src:t.adj.(!pivot) ~dst:candidates;
      Bitset.iter
        (fun v ->
          if (not !exceeded) && Bitset.mem p v then begin
            let p' = Bitset.copy p and x' = Bitset.copy x in
            Bitset.inter_into ~src:t.adj.(v) ~dst:p';
            Bitset.inter_into ~src:t.adj.(v) ~dst:x';
            bk (v :: r) p' x';
            Bitset.remove p v;
            Bitset.add x v
          end)
        candidates
    end
  in
  let p = Bitset.create t.n and x = Bitset.create t.n in
  Bitset.fill p;
  bk [] p x;
  (List.sort compare !best, not !exceeded)

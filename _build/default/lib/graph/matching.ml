(* Hopcroft-Karp maximum bipartite matching.

   Used as a fast feasibility filter by binding algorithms: a partial
   binding can only extend to a full one if the remaining operations
   admit a perfect matching into the remaining compatible slots. *)

type t = {
  n_left : int;
  n_right : int;
  adj : int list array; (* for each left vertex, compatible right vertices *)
}

let create ~n_left ~n_right = { n_left; n_right; adj = Array.make n_left [] }

let add_pair t l r =
  if l < 0 || l >= t.n_left then invalid_arg "Matching.add_pair: left out of range";
  if r < 0 || r >= t.n_right then invalid_arg "Matching.add_pair: right out of range";
  t.adj.(l) <- r :: t.adj.(l)

let inf = max_int

(* Returns (size, match_left, match_right); -1 means unmatched. *)
let solve t =
  let match_l = Array.make t.n_left (-1) in
  let match_r = Array.make t.n_right (-1) in
  let dist = Array.make t.n_left 0 in
  let bfs () =
    let queue = Queue.create () in
    let found = ref false in
    for l = 0 to t.n_left - 1 do
      if match_l.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- inf
    done;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      List.iter
        (fun r ->
          let l' = match_r.(r) in
          if l' = -1 then found := true
          else if dist.(l') = inf then begin
            dist.(l') <- dist.(l) + 1;
            Queue.add l' queue
          end)
        t.adj.(l)
    done;
    !found
  in
  let rec dfs l =
    let rec try_rights = function
      | [] ->
          dist.(l) <- inf;
          false
      | r :: rest ->
          let l' = match_r.(r) in
          let ok = l' = -1 || (dist.(l') = dist.(l) + 1 && dfs l') in
          if ok then begin
            match_l.(l) <- r;
            match_r.(r) <- l;
            true
          end
          else try_rights rest
    in
    try_rights t.adj.(l)
  in
  let size = ref 0 in
  while bfs () do
    for l = 0 to t.n_left - 1 do
      if match_l.(l) = -1 && dfs l then incr size
    done
  done;
  (!size, match_l, match_r)

let max_matching_size t =
  let size, _, _ = solve t in
  size

let has_perfect_left_matching t = max_matching_size t = t.n_left

lib/smt/smt.ml: Array Hashtbl List Ocgra_sat

lib/smt/smt.mli: Ocgra_sat

(* Register allocation for mapped kernels ([29] rotating register
   files; [25] URECA's unified register file; [46] REGIMap).

   Given a valid mapping, every Hold in a route is a value parked in a
   register file.  This module computes, per PE:

   - the rotating-file register need: the maximum number of live hold
     cycles per modulo slot (what the checker bounds against rf_size);
   - the unified/static-file register need: the chromatic number of the
     circular-arc overlap graph of the holds, i.e. what a register file
     WITHOUT rotation must provision (>= the rotating need; the gap is
     the benefit [29] reports for rotation). *)

open Ocgra_core

type hold = { pe : int; from_ : int; until : int }

let holds_of_mapping (m : Mapping.t) =
  Array.to_list m.routes
  |> List.concat_map
       (List.filter_map (function
         | Mapping.Hold { pe; from_; until } -> Some { pe; from_; until }
         | Mapping.Hop _ -> None))

(* Live modulo slots of a hold: one register-slot unit per covered
   cycle, wrapped into [0, ii). *)
let live_slots ~ii h = List.init (h.until - h.from_) (fun i -> (h.from_ + 1 + i) mod ii)

(* Rotating-file need: per PE, max over slots of live values. *)
let rotating_need ~ii (m : Mapping.t) ~npe =
  let need = Array.make npe 0 in
  let per_slot = Hashtbl.create 32 in
  List.iter
    (fun h ->
      List.iter
        (fun s ->
          let k = (h.pe, s) in
          let c = 1 + Option.value ~default:0 (Hashtbl.find_opt per_slot k) in
          Hashtbl.replace per_slot k c;
          need.(h.pe) <- max need.(h.pe) c)
        (live_slots ~ii h))
    (holds_of_mapping m);
  need

(* Unified/static-file need: greedy colouring of the overlap graph of
   hold *instances* per PE (a hold spanning s cycles keeps
   ceil(s / II) iterations' values alive simultaneously, so it
   contributes that many instances; holds overlap when they share a
   modulo slot). *)
let unified_need ~ii (m : Mapping.t) ~npe =
  let need = Array.make npe 0 in
  let holds_per_pe = Array.make npe [] in
  List.iter
    (fun h ->
      let copies = ((h.until - h.from_) + ii - 1) / ii in
      for _ = 1 to copies do
        holds_per_pe.(h.pe) <- h :: holds_per_pe.(h.pe)
      done)
    (holds_of_mapping m);
  for pe = 0 to npe - 1 do
    let holds = Array.of_list holds_per_pe.(pe) in
    let slots = Array.map (fun h -> List.sort_uniq compare (live_slots ~ii h)) holds in
    let overlap i j = List.exists (fun s -> List.mem s slots.(j)) slots.(i) in
    let colour = Array.make (Array.length holds) (-1) in
    Array.iteri
      (fun i _ ->
        let used = Array.to_list colour |> List.filteri (fun j _ -> j < i && overlap i j) in
        let rec first c = if List.mem c used then first (c + 1) else c in
        colour.(i) <- first 0;
        need.(pe) <- max need.(pe) (colour.(i) + 1))
      holds
  done;
  need

(* Summary used by the register-file ablation. *)
type summary = {
  total_holds : int;
  max_rotating : int;
  max_unified : int;
  total_rotating : int;
  total_unified : int;
}

let summarize (m : Mapping.t) ~npe =
  let rot = rotating_need ~ii:m.ii m ~npe and uni = unified_need ~ii:m.ii m ~npe in
  {
    total_holds = List.length (holds_of_mapping m);
    max_rotating = Array.fold_left max 0 rot;
    max_unified = Array.fold_left max 0 uni;
    total_rotating = Array.fold_left ( + ) 0 rot;
    total_unified = Array.fold_left ( + ) 0 uni;
  }

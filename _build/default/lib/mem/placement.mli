(** Array-to-bank data placement ([67], [68]): avoid same-slot
    same-bank pairs.  Greedy by access pressure, or exact by a small
    assignment ILP. *)

type array_info = {
  name : string;
  size : int;
  slots : int list;  (** modulo slots in which the array is accessed *)
}

(** Shared access slots between two arrays. *)
val conflict_weight : array_info -> array_info -> int

(** (array, bank) assignment. *)
val greedy : banks:int -> array_info list -> (string * int) list

(** Exact assignment minimising the weighted conflicts; [None] when
    the solver budget runs out. *)
val ilp : banks:int -> array_info list -> (string * int) list option

(** Weighted same-bank conflict pairs of an assignment. *)
val cost : array_info list -> (string * int) list -> int

(* Multi-bank data memory model (Section III.C: "number of banks,
   communication bandwidth, and memory size" [50], [65]-[68]).

   The CGRA's load/store units reach a scratchpad split into [banks]
   single-ported banks; two accesses in the same cycle to the same bank
   stall one cycle each (sequentialised).  Bank of an address is
   [addr / interleave mod banks] — low-order interleaving for
   interleave = 1, block-banked for larger interleave. *)

type t = { banks : int; interleave : int }

let make ?(interleave = 1) banks =
  if banks < 1 then invalid_arg "Bank.make: need at least one bank";
  { banks; interleave = max 1 interleave }

let bank_of t addr = addr / t.interleave mod t.banks

(* Conflicts of one cycle's accesses: number of extra stall cycles. *)
let cycle_conflicts t addrs =
  let per_bank = Array.make t.banks 0 in
  List.iter (fun a -> per_bank.(bank_of t a) <- per_bank.(bank_of t a) + 1) addrs;
  Array.fold_left (fun acc c -> acc + max 0 (c - 1)) 0 per_bank

(* Total stalls of an access trace: list of per-cycle address lists. *)
let trace_conflicts t trace = List.fold_left (fun acc addrs -> acc + cycle_conflicts t addrs) 0 trace

(* The access trace of a mapped kernel: for each cycle slot of the
   steady state, the addresses touched by loads/stores scheduled in
   that slot, for a run of [iters] iterations with the given affine
   access functions (array base + stride * iteration). *)
type access = { array_base : int; stride : int; offset : int }

let steady_state_trace ~ii ~iters (accesses : (int * access) list) =
  (* (slot, access) list -> per-cycle address lists *)
  List.init iters (fun iter ->
      List.init ii (fun slot ->
          List.filter_map
            (fun (s, a) ->
              if s = slot then Some (a.array_base + (a.stride * iter) + a.offset) else None)
            accesses))
  |> List.concat

(* Sweep bank counts for a trace shape; the banking ablation. *)
let conflicts_by_banks ~bank_counts ~ii ~iters accesses =
  List.map
    (fun banks ->
      let t = make banks in
      (banks, trace_conflicts t (steady_state_trace ~ii ~iters accesses)))
    bank_counts

(** Multi-bank scratchpad model (Section III.C): single-ported banks,
    same-cycle same-bank accesses sequentialised into stalls. *)

type t = { banks : int; interleave : int }

(** [make ?interleave banks]: bank of an address is
    [addr / interleave mod banks] (low-order interleaving by default). *)
val make : ?interleave:int -> int -> t

val bank_of : t -> int -> int

(** Extra stall cycles of one cycle's address list. *)
val cycle_conflicts : t -> int list -> int

(** Total stalls of a per-cycle trace. *)
val trace_conflicts : t -> int list list -> int

(** Affine access: address = base + stride * iteration + offset. *)
type access = { array_base : int; stride : int; offset : int }

(** Per-cycle address lists of a steady-state run: accesses are
    (modulo slot, access) pairs. *)
val steady_state_trace : ii:int -> iters:int -> (int * access) list -> int list list

(** The banking ablation: (bank count, stalls) per configuration. *)
val conflicts_by_banks :
  bank_counts:int list -> ii:int -> iters:int -> (int * access) list -> (int * int) list

(** Register allocation analysis of a mapped kernel ([29] rotating vs
    [25] unified register files): every Hold in a route is a value
    parked in a register file. *)

type hold = { pe : int; from_ : int; until : int }

val holds_of_mapping : Ocgra_core.Mapping.t -> hold list

(** Modulo slots a hold occupies, one entry per covered cycle. *)
val live_slots : ii:int -> hold -> int list

(** Rotating-file need per PE: the max per-slot live count (what the
    checker bounds against rf_size). *)
val rotating_need : ii:int -> Ocgra_core.Mapping.t -> npe:int -> int array

(** Unified/static-file need per PE: greedy colouring of hold
    *instances* (a hold spanning s cycles keeps ceil(s/II) values alive
    at once); always >= the rotating need — the gap is the benefit of
    rotation that [29] reports. *)
val unified_need : ii:int -> Ocgra_core.Mapping.t -> npe:int -> int array

type summary = {
  total_holds : int;
  max_rotating : int;
  max_unified : int;
  total_rotating : int;
  total_unified : int;
}

val summarize : Ocgra_core.Mapping.t -> npe:int -> summary

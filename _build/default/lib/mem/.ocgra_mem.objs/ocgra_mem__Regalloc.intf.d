lib/mem/regalloc.mli: Ocgra_core

lib/mem/placement.mli:

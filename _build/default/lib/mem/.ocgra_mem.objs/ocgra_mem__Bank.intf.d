lib/mem/bank.mli:

lib/mem/bank.ml: Array List

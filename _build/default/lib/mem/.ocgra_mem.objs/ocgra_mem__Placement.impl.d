lib/mem/placement.ml: Array Hashtbl List Ocgra_ilp Printf

lib/mem/regalloc.ml: Array Hashtbl List Mapping Ocgra_core Option

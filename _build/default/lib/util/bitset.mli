(** Fixed-capacity bitset over ints backed by an int array.

    The CP engine stores finite domains in these; graph algorithms use
    them as dense sets. All indices must be in \[0, capacity);
    violations raise [Invalid_argument]. *)

type t

val create : int -> t
val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit

(** Set every bit in \[0, capacity). *)
val fill : t -> unit

val copy : t -> t

(** [copy_into ~src ~dst] overwrites [dst] with [src]'s contents
    (capacities must match). *)
val copy_into : src:t -> dst:t -> unit

val cardinal : t -> int
val is_empty : t -> bool

(** In-place set operations into [dst]; capacities must match. *)
val inter_into : src:t -> dst:t -> unit

val union_into : src:t -> dst:t -> unit
val diff_into : src:t -> dst:t -> unit
val equal : t -> t -> bool

(** Iterate members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val min_elt : t -> int option
val of_list : int -> int list -> t

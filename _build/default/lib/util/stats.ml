(* Descriptive statistics and ASCII histograms.

   The Fig. 4 timeline and the ablation benches render their series with
   [hbar_chart]; the empirical tables use the summary statistics. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) and hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty";
  Array.fold_left min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty";
  Array.fold_left max xs.(0) xs

(* Horizontal bar chart: one labelled row per (label, value).
   [width] is the length of the longest bar in characters. *)
let hbar_chart ?(width = 50) ?(bar_char = '#') series =
  let max_value = List.fold_left (fun acc (_, v) -> max acc v) 0.0 series in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, value) ->
      let bar_len =
        if max_value <= 0.0 then 0
        else int_of_float (Float.round (value /. max_value *. float_of_int width))
      in
      Buffer.add_string buf (Table.pad Table.Left label_width label);
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.make bar_len bar_char);
      Buffer.add_string buf (Printf.sprintf " %g\n" value))
    series;
  Buffer.contents buf

(** Disjoint-set forest with path compression and union by rank. *)

type t

(** [create n] makes [n] singleton components 0..n-1. *)
val create : int -> t

(** Representative of an element's component. *)
val find : t -> int -> int

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** Current number of components. *)
val components : t -> int

(** Plain-text table rendering shared by the bench and reports. *)

type align = Left | Right | Center

(** [pad align width s] pads [s] to [width] characters. *)
val pad : align -> int -> string -> string

(** [render ~headers rows] lays the table out with per-column widths;
    [aligns] defaults to left everywhere. Raises [Invalid_argument] on
    ragged rows. *)
val render : ?aligns:align array -> headers:string array -> string array list -> string

(** [render] straight to stdout. *)
val print : ?aligns:align array -> headers:string array -> string array list -> unit

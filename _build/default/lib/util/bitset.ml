(* Fixed-capacity bitset over ints, backed by an int array.

   The CP engine stores finite domains as bitsets; the SAT solver and
   graph algorithms use them as dense visited sets. *)

type t = { words : int array; capacity : int }

let word_bits = Sys.int_size

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((capacity + word_bits - 1) / word_bits) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  for i = 0 to t.capacity - 1 do
    add t i
  done

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let copy_into ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.copy_into: capacity mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let inter_into ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.inter_into: capacity mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let union_into ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_into ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.diff_into: capacity mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let equal a b = a.capacity = b.capacity && a.words = b.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to word_bits - 1 do
        if word land (1 lsl b) <> 0 then f ((w * word_bits) + b)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

(* Smallest member, or None. *)
let min_elt t =
  let result = ref None in
  (try
     iter
       (fun i ->
         result := Some i;
         raise Exit)
       t
   with Exit -> ());
  !result

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

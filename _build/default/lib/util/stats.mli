(** Descriptive statistics and ASCII histograms for the bench output. *)

(** All of these raise [Invalid_argument] on empty input. *)

val mean : float array -> float

(** Sample variance (n-1 denominator); 0 for fewer than two points. *)
val variance : float array -> float

val stddev : float array -> float

(** [percentile xs p] with linear interpolation, [p] in \[0, 100\]. *)
val percentile : float array -> float -> float

val median : float array -> float
val minimum : float array -> float
val maximum : float array -> float

(** Horizontal bar chart: one labelled row per (label, value); [width]
    is the longest bar in characters. *)
val hbar_chart : ?width:int -> ?bar_char:char -> (string * float) list -> string

(** Resizable binary min-heap keyed by integer priority.

    Ties break by insertion order, so traversals that use this queue
    (the router, list scheduling) are deterministic. *)

type 'a t

(** [create dummy] makes an empty queue; [dummy] fills unused slots. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

(** [push q prio x] inserts [x] with priority [prio]. *)
val push : 'a t -> int -> 'a -> unit

(** Smallest priority first; [None] when empty. *)
val pop : 'a t -> (int * 'a) option

(** Like {!pop} but raises [Invalid_argument] when empty. *)
val pop_exn : 'a t -> int * 'a

(** Minimum without removing it. *)
val peek : 'a t -> (int * 'a) option

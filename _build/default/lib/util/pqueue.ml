(* Resizable binary min-heap keyed by an integer priority.

   Used by the Dijkstra-based router and by list scheduling, where
   priorities are small non-negative integers (cycle counts, path
   lengths).  Ties are broken by insertion order so that traversals are
   deterministic. *)

type 'a t = {
  mutable prio : int array;
  mutable seq : int array; (* insertion counter, for deterministic ties *)
  mutable data : 'a array;
  mutable size : int;
  mutable counter : int;
  dummy : 'a;
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  {
    prio = Array.make capacity 0;
    seq = Array.make capacity 0;
    data = Array.make capacity dummy;
    size = 0;
    counter = 0;
    dummy;
  }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

let grow t =
  let n = Array.length t.prio in
  let n' = 2 * n in
  let prio = Array.make n' 0 and seq = Array.make n' 0 and data = Array.make n' t.dummy in
  Array.blit t.prio 0 prio 0 n;
  Array.blit t.seq 0 seq 0 n;
  Array.blit t.data 0 data 0 n;
  t.prio <- prio;
  t.seq <- seq;
  t.data <- data

let less t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

let swap t i j =
  let p = t.prio.(i) and s = t.seq.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.seq.(i) <- t.seq.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.seq.(j) <- s;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio x =
  if t.size = Array.length t.prio then grow t;
  t.prio.(t.size) <- prio;
  t.seq.(t.size) <- t.counter;
  t.data.(t.size) <- x;
  t.counter <- t.counter + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prio.(0) and x = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.seq.(0) <- t.seq.(t.size);
      t.data.(0) <- t.data.(t.size)
    end;
    t.data.(t.size) <- t.dummy;
    sift_down t 0;
    Some (prio, x)
  end

let pop_exn t =
  match pop t with
  | Some px -> px
  | None -> invalid_arg "Pqueue.pop_exn: empty"

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.data.(0))

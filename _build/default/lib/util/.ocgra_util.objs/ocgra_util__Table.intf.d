lib/util/table.mli:

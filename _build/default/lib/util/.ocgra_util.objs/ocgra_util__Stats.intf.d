lib/util/stats.mli:

lib/util/bitset.mli:

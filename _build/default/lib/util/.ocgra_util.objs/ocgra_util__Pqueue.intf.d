lib/util/pqueue.mli:

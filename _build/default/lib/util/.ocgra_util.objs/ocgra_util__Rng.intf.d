lib/util/rng.mli:

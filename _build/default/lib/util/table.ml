(* Plain-text table rendering for bench and report output.

   The bench harness regenerates the survey's Table I and the empirical
   comparison tables in a monospaced layout; this module owns the
   column sizing and separators so every table in the repo looks alike. *)

type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let space = width - n in
    match align with
    | Left -> s ^ String.make space ' '
    | Right -> String.make space ' ' ^ s
    | Center ->
        let l = space / 2 in
        String.make l ' ' ^ s ^ String.make (space - l) ' '

let widths headers rows =
  let ncols = Array.length headers in
  let w = Array.map String.length headers in
  List.iter
    (fun row ->
      if Array.length row <> ncols then invalid_arg "Table: ragged row";
      Array.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row)
    rows;
  w

let separator w =
  "+" ^ String.concat "+" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w)) ^ "+"

let render_row aligns w row =
  let cells =
    Array.to_list
      (Array.mapi (fun i cell -> " " ^ pad aligns.(i) w.(i) cell ^ " ") row)
  in
  "|" ^ String.concat "|" cells ^ "|"

(* [render ~headers rows] returns the table as a string, one row per
   line. [aligns] defaults to left for every column. *)
let render ?aligns ~headers rows =
  let ncols = Array.length headers in
  let aligns = match aligns with Some a -> a | None -> Array.make ncols Left in
  if Array.length aligns <> ncols then invalid_arg "Table.render: aligns mismatch";
  let w = widths headers rows in
  let sep = separator w in
  let buf = Buffer.create 256 in
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row (Array.make ncols Center) w headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row aligns w row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)

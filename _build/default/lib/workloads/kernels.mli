(** The kernel library: loop bodies of the benchmark families the
    surveyed papers map, as DFGs with loop-carried edges plus reference
    semantics for end-to-end verification. *)

type t = {
  name : string;
  description : string;
  dfg : Ocgra_dfg.Dfg.t;
  init : int -> int;  (** iteration -1 value per node *)
  inputs : int -> (string * int array) list;  (** trip count -> streams *)
  memory : (string * int array) list;  (** named arrays *)
  outputs : string list;
  has_branch : bool;  (** contains if-converted control flow *)
}

val dot_product : unit -> t
val saxpy : unit -> t
val fir4 : unit -> t
val iir2 : unit -> t
val sobel_row : unit -> t
val horner : unit -> t
val butterfly : unit -> t
val running_max : unit -> t
val absdiff : unit -> t
val mix_round : unit -> t
val matvec2 : unit -> t
val prefix_sum : unit -> t
val cmac : unit -> t
val moving_average3 : unit -> t
val alpha_blend : unit -> t
val conv3_store : unit -> t

val all : unit -> t list

(** Raises [Invalid_argument] on unknown names. *)
val find : string -> t

(** Small kernels on which the exact methods finish quickly. *)
val small_suite : unit -> t list

val full_suite : unit -> t list

(** Run the reference interpreter on a kernel's own streams/memory. *)
val eval_reference : t -> iters:int -> Ocgra_dfg.Eval.result

(** Layered random DFG generator for scalability experiments:
    controlled size, fan-in and recurrence density. *)

type params = {
  nodes : int;
  layers : int;
  fanin : int;
  carried_probability : float;  (** chance a node feeds a recurrence *)
  memory_ops : bool;
}

val default : params

(** Returns the DFG and a stream builder (trip count -> named input
    streams). Guaranteed valid, dist-0-acyclic, with at least one
    output. *)
val generate : ?params:params -> Ocgra_util.Rng.t -> Ocgra_dfg.Dfg.t * (int -> (string * int array) list)

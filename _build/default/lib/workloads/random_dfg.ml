(* Layered random DFG generator: scalability experiments sweep over
   synthetic kernels with controlled size, fan-in, and recurrence
   density, the standard methodology when published benchmark DFGs are
   not available. *)

open Ocgra_dfg
module Rng = Ocgra_util.Rng

type params = {
  nodes : int;
  layers : int;
  fanin : int; (* max operands drawn from earlier layers *)
  carried_probability : float; (* chance a node feeds a recurrence *)
  memory_ops : bool;
}

let default = { nodes = 12; layers = 4; fanin = 2; carried_probability = 0.2; memory_ops = false }

let arith_ops = [| Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Min; Op.Max |]

let generate ?(params = default) rng =
  let g = Dfg.create () in
  let n_inputs = max 1 (params.nodes / 6) in
  let inputs = List.init n_inputs (fun i -> Dfg.input g (Printf.sprintf "in%d" i)) in
  let pool = ref (Array.of_list inputs) in
  let all_nodes = ref inputs in
  let per_layer = max 1 ((params.nodes - n_inputs) / max 1 params.layers) in
  for _layer = 1 to params.layers do
    let fresh = ref [] in
    for _ = 1 to per_layer do
      let op = Rng.choose rng arith_ops in
      let a = Rng.choose rng !pool in
      let b = Rng.choose rng !pool in
      let v = Dfg.binop g op a b in
      fresh := v :: !fresh;
      all_nodes := v :: !all_nodes
    done;
    pool := Array.of_list (!fresh @ Array.to_list !pool)
  done;
  (* recurrences: v feeds itself (through an add) one iteration later *)
  let candidates =
    List.filter (fun _v -> Rng.float rng 1.0 < params.carried_probability) !all_nodes
  in
  List.iteri
    (fun i v ->
      let acc = Dfg.add ~name:(Printf.sprintf "rec%d" i) g (Op.Binop Op.Add) in
      Dfg.add_edge g ~src:v ~dst:acc ~port:0;
      Dfg.add_edge g ~src:acc ~dst:acc ~port:1 ~dist:1;
      all_nodes := acc :: !all_nodes)
    candidates;
  (* outputs: everything whose only consumer is itself (accumulators)
     or that has no consumer at all; guarantee at least one output *)
  let has_other_consumer = Hashtbl.create 32 in
  Dfg.iter_edges
    (fun (e : Dfg.edge) -> if e.src <> e.dst then Hashtbl.replace has_other_consumer e.src ())
    g;
  let sinks =
    List.filter
      (fun v ->
        (not (Hashtbl.mem has_other_consumer v))
        && match Dfg.op g v with Op.Output _ | Op.Input _ -> false | _ -> true)
      !all_nodes
  in
  let sinks = match (sinks, !all_nodes) with [], v :: _ -> [ v ] | s, _ -> s in
  List.iteri (fun i v -> ignore (Dfg.output g (Printf.sprintf "out%d" i) v)) sinks;
  let streams n =
    List.init n_inputs (fun i ->
        (Printf.sprintf "in%d" i, Array.init n (fun k -> ((k * (i + 3)) mod 17) - 8)))
  in
  (g, streams)

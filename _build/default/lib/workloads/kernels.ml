(* The kernel library: loop bodies of the benchmarks the surveyed
   papers map (DSP/multimedia inner loops), built directly as DFGs with
   loop-carried edges and paired with reference semantics for
   end-to-end functional verification.

   Each kernel provides: the DFG, the init values of its recurrences,
   input streams for a given trip count, and the names of its outputs
   so the simulator's streams can be compared with the interpreter's. *)

open Ocgra_dfg

type t = {
  name : string;
  description : string;
  dfg : Dfg.t;
  init : int -> int; (* initial (iteration -1) value per node *)
  inputs : int -> (string * int array) list; (* trip count -> streams *)
  memory : (string * int array) list; (* named arrays *)
  outputs : string list;
  has_branch : bool; (* contains if-converted control flow *)
}

let no_init (_ : int) = 0

(* Deterministic pseudo-input streams. *)
let stream n f = Array.init n f

(* ---------- dot product: the Fig. 3 kernel ----------
   for i: sum += A[i] * B[i]
   recurrence on sum (RecMII = 1 with single-cycle add). *)
let dot_product () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" in
  let b = Dfg.input g "b" in
  let m = Dfg.binop g Op.Mul a b in
  let acc = Dfg.add ~name:"sum" g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:m ~dst:acc ~port:0;
  Dfg.add_edge g ~src:acc ~dst:acc ~port:1 ~dist:1;
  ignore (Dfg.output g "sum" acc);
  {
    name = "dot-product";
    description = "sum += a[i] * b[i] (Fig. 3 kernel)";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("a", stream n (fun i -> i + 1)); ("b", stream n (fun i -> (2 * i) - 3)) ]);
    memory = [];
    outputs = [ "sum" ];
    has_branch = false;
  }

(* ---------- saxpy: y[i] = alpha * x[i] + y[i] ---------- *)
let saxpy () =
  let g = Dfg.create () in
  let alpha = Dfg.const g 7 in
  let x = Dfg.input g "x" in
  let y = Dfg.input g "y" in
  let ax = Dfg.binop g Op.Mul alpha x in
  let r = Dfg.binop g Op.Add ax y in
  ignore (Dfg.output g "out" r);
  {
    name = "saxpy";
    description = "out[i] = 7 * x[i] + y[i]";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("x", stream n (fun i -> i - 4)); ("y", stream n (fun i -> 3 * i)) ]);
    memory = [];
    outputs = [ "out" ];
    has_branch = false;
  }

(* ---------- FIR filter, 4 taps on a shifting window ----------
   out = c0*x[i] + c1*x[i-1] + c2*x[i-2] + c3*x[i-3]
   The delayed samples are loop-carried edges from the input node. *)
let fir4 () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let c0 = Dfg.const g 3 and c1 = Dfg.const g (-1) and c2 = Dfg.const g 4 and c3 = Dfg.const g 2 in
  let t0 = Dfg.binop g Op.Mul c0 x in
  let t1 = Dfg.add g (Op.Binop Op.Mul) in
  Dfg.add_edge g ~src:c1 ~dst:t1 ~port:0;
  Dfg.add_edge g ~src:x ~dst:t1 ~port:1 ~dist:1;
  let t2 = Dfg.add g (Op.Binop Op.Mul) in
  Dfg.add_edge g ~src:c2 ~dst:t2 ~port:0;
  Dfg.add_edge g ~src:x ~dst:t2 ~port:1 ~dist:2;
  let t3 = Dfg.add g (Op.Binop Op.Mul) in
  Dfg.add_edge g ~src:c3 ~dst:t3 ~port:0;
  Dfg.add_edge g ~src:x ~dst:t3 ~port:1 ~dist:3;
  let s1 = Dfg.binop g Op.Add t0 t1 in
  let s2 = Dfg.binop g Op.Add t2 t3 in
  let s = Dfg.binop g Op.Add s1 s2 in
  ignore (Dfg.output g "y" s);
  {
    name = "fir4";
    description = "4-tap FIR on a shifting window";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("x", stream n (fun i -> (i * i mod 17) - 5)) ]);
    memory = [];
    outputs = [ "y" ];
    has_branch = false;
  }

(* ---------- IIR biquad-ish: y = x + a*y@1 + b*y@2 ----------
   two-deep recurrence: RecMII > 1 territory when latencies add up. *)
let iir2 () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let a = Dfg.const g 2 and b = Dfg.const g (-1) in
  let ay = Dfg.add g (Op.Binop Op.Mul) in
  let y = Dfg.add ~name:"y" g (Op.Binop Op.Add) in
  let by = Dfg.add g (Op.Binop Op.Mul) in
  let s = Dfg.binop g Op.Add ay by in
  Dfg.add_edge g ~src:a ~dst:ay ~port:0;
  Dfg.add_edge g ~src:y ~dst:ay ~port:1 ~dist:1;
  Dfg.add_edge g ~src:b ~dst:by ~port:0;
  Dfg.add_edge g ~src:y ~dst:by ~port:1 ~dist:2;
  Dfg.add_edge g ~src:x ~dst:y ~port:0;
  Dfg.add_edge g ~src:s ~dst:y ~port:1;
  ignore (Dfg.output g "y" y);
  {
    name = "iir2";
    description = "order-2 IIR recurrence y = x + 2*y[-1] - y[-2]";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("x", stream n (fun i -> (i mod 5) - 2)) ]);
    memory = [];
    outputs = [ "y" ];
    has_branch = false;
  }

(* ---------- 3x3 convolution row (Sobel-like) over memory ----------
   loads three neighbours with computed addresses, weights, stores. *)
let sobel_row () =
  let g = Dfg.create () in
  let i = Dfg.input g "i" in
  let one = Dfg.const g 1 in
  let two = Dfg.const g 2 in
  let l0 = Dfg.load g "img" i in
  let i1 = Dfg.binop g Op.Add i one in
  let l1 = Dfg.load g "img" i1 in
  let i2 = Dfg.binop g Op.Add i two in
  let l2 = Dfg.load g "img" i2 in
  let w0 = Dfg.binop g Op.Mul l0 one in
  let w1 = Dfg.binop g Op.Mul l1 two in
  let s01 = Dfg.binop g Op.Add w0 w1 in
  let s = Dfg.binop g Op.Add s01 l2 in
  ignore (Dfg.store g "out" i s);
  ignore (Dfg.output g "edge" s);
  {
    name = "sobel-row";
    description = "1x3 convolution with loads/stores (memory-bound)";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("i", stream n (fun i -> i)) ]);
    memory =
      [ ("img", Array.init 64 (fun k -> (k * 7 mod 23) - 11)); ("out", Array.make 64 0) ];
    outputs = [ "edge" ];
    has_branch = false;
  }

(* ---------- Horner polynomial evaluation (serial chain) ----------
   acc = acc * x + c[i]; long recurrence chain = RecMII stress. *)
let horner () =
  let g = Dfg.create () in
  let x = Dfg.const g 3 in
  let c = Dfg.input g "c" in
  let mul = Dfg.add ~name:"acc*x" g (Op.Binop Op.Mul) in
  let acc = Dfg.add ~name:"acc" g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:acc ~dst:mul ~port:0 ~dist:1;
  Dfg.add_edge g ~src:x ~dst:mul ~port:1;
  Dfg.add_edge g ~src:mul ~dst:acc ~port:0;
  Dfg.add_edge g ~src:c ~dst:acc ~port:1;
  ignore (Dfg.output g "acc" acc);
  {
    name = "horner";
    description = "acc = acc * 3 + c[i] (serial recurrence, RecMII = 2)";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("c", stream n (fun i -> (i mod 7) - 3)) ]);
    memory = [];
    outputs = [ "acc" ];
    has_branch = false;
  }

(* ---------- FFT butterfly (radix-2, integer) ---------- *)
let butterfly () =
  let g = Dfg.create () in
  let ar = Dfg.input g "ar" and ai = Dfg.input g "ai" in
  let br = Dfg.input g "br" and bi = Dfg.input g "bi" in
  let wr = Dfg.const g 3 and wi = Dfg.const g (-2) in
  let t1 = Dfg.binop g Op.Mul br wr in
  let t2 = Dfg.binop g Op.Mul bi wi in
  let t3 = Dfg.binop g Op.Mul br wi in
  let t4 = Dfg.binop g Op.Mul bi wr in
  let tr = Dfg.binop g Op.Sub t1 t2 in
  let ti = Dfg.binop g Op.Add t3 t4 in
  ignore (Dfg.output g "xr" (Dfg.binop g Op.Add ar tr));
  ignore (Dfg.output g "xi" (Dfg.binop g Op.Add ai ti));
  ignore (Dfg.output g "yr" (Dfg.binop g Op.Sub ar tr));
  ignore (Dfg.output g "yi" (Dfg.binop g Op.Sub ai ti));
  {
    name = "fft-butterfly";
    description = "radix-2 FFT butterfly (wide, multiplier-heavy)";
    dfg = g;
    init = no_init;
    inputs =
      (fun n ->
        [
          ("ar", stream n (fun i -> i));
          ("ai", stream n (fun i -> i - 7));
          ("br", stream n (fun i -> (3 * i) + 1));
          ("bi", stream n (fun i -> 5 - i));
        ]);
    memory = [];
    outputs = [ "xr"; "xi"; "yr"; "yi" ];
    has_branch = false;
  }

(* ---------- running max with if-conversion (Select) ---------- *)
let running_max () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let best = Dfg.add ~name:"best" g Op.Select in
  let gt = Dfg.add g (Op.Binop Op.Lt) in
  (* gt = best@1 < x *)
  Dfg.add_edge g ~src:best ~dst:gt ~port:0 ~dist:1;
  Dfg.add_edge g ~src:x ~dst:gt ~port:1;
  Dfg.add_edge g ~src:gt ~dst:best ~port:0;
  Dfg.add_edge g ~src:x ~dst:best ~port:1;
  Dfg.add_edge g ~src:best ~dst:best ~port:2 ~dist:1;
  ignore (Dfg.output g "max" best);
  {
    name = "running-max";
    description = "best = best < x ? x : best (if-converted branch)";
    dfg = g;
    init = (fun _ -> min_int / 4);
    inputs = (fun n -> [ ("x", stream n (fun i -> (i * 13 mod 31) - 15)) ]);
    memory = [];
    outputs = [ "max" ];
    has_branch = true;
  }

(* ---------- vector absolute difference with branch ----------
   out = |a - b| via if-conversion. *)
let absdiff () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" and b = Dfg.input g "b" in
  let d = Dfg.binop g Op.Sub a b in
  let nd = Dfg.unop g Op.Neg d in
  let zero = Dfg.const g 0 in
  let isneg = Dfg.binop g Op.Lt d zero in
  let r = Dfg.select g isneg nd d in
  ignore (Dfg.output g "out" r);
  {
    name = "absdiff";
    description = "out = |a[i] - b[i]| (if-converted)";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("a", stream n (fun i -> i mod 9)); ("b", stream n (fun i -> (i * 3) mod 11)) ]);
    memory = [];
    outputs = [ "out" ];
    has_branch = true;
  }

(* ---------- mix round: shift/xor heavy (crypto-ish) ---------- *)
let mix_round () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let k = Dfg.const g 0x5bd1 in
  let c13 = Dfg.const g 13 and c7 = Dfg.const g 7 in
  let s1 = Dfg.binop g Op.Shl x c13 in
  let x1 = Dfg.binop g Op.Xor x s1 in
  let s2 = Dfg.binop g Op.Shr x1 c7 in
  let x2 = Dfg.binop g Op.Xor x1 s2 in
  let h = Dfg.add ~name:"h" g (Op.Binop Op.Xor) in
  let hk = Dfg.add g (Op.Binop Op.Mul) in
  Dfg.add_edge g ~src:h ~dst:hk ~port:0 ~dist:1;
  Dfg.add_edge g ~src:k ~dst:hk ~port:1;
  Dfg.add_edge g ~src:x2 ~dst:h ~port:0;
  Dfg.add_edge g ~src:hk ~dst:h ~port:1;
  ignore (Dfg.output g "h" h);
  {
    name = "mix-round";
    description = "xorshift mix with multiplicative chaining";
    dfg = g;
    init = (fun _ -> 1);
    inputs = (fun n -> [ ("x", stream n (fun i -> i * 2654435761)) ]);
    memory = [];
    outputs = [ "h" ];
    has_branch = false;
  }

(* ---------- matvec row: acc over 2 columns, unrolled flavour ---------- *)
let matvec2 () =
  let g = Dfg.create () in
  let a0 = Dfg.input g "a0" and a1 = Dfg.input g "a1" in
  let x0 = Dfg.const g 5 and x1 = Dfg.const g (-3) in
  let m0 = Dfg.binop g Op.Mul a0 x0 in
  let m1 = Dfg.binop g Op.Mul a1 x1 in
  let s = Dfg.binop g Op.Add m0 m1 in
  let acc = Dfg.add ~name:"acc" g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:s ~dst:acc ~port:0;
  Dfg.add_edge g ~src:acc ~dst:acc ~port:1 ~dist:1;
  ignore (Dfg.output g "acc" acc);
  {
    name = "matvec2";
    description = "row-of-matrix dot with 2 columns per iteration";
    dfg = g;
    init = no_init;
    inputs =
      (fun n -> [ ("a0", stream n (fun i -> i - 1)); ("a1", stream n (fun i -> 2 - i)) ]);
    memory = [];
    outputs = [ "acc" ];
    has_branch = false;
  }

(* ---------- prefix sum with stores ---------- *)
let prefix_sum () =
  let g = Dfg.create () in
  let i = Dfg.input g "i" in
  let x = Dfg.load g "src" i in
  let acc = Dfg.add ~name:"acc" g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:x ~dst:acc ~port:0;
  Dfg.add_edge g ~src:acc ~dst:acc ~port:1 ~dist:1;
  ignore (Dfg.store g "dst" i acc);
  ignore (Dfg.output g "acc" acc);
  {
    name = "prefix-sum";
    description = "dst[i] = dst[i-1] + src[i] via accumulator";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("i", stream n (fun i -> i)) ]);
    memory = [ ("src", Array.init 64 (fun k -> (k mod 13) - 6)); ("dst", Array.make 64 0) ];
    outputs = [ "acc" ];
    has_branch = false;
  }

(* ---------- complex multiply-accumulate ----------
   (cr, ci) += (ar, ai) * (br, bi): the EVM/radar workhorse. *)
let cmac () =
  let g = Dfg.create () in
  let ar = Dfg.input g "ar" and ai = Dfg.input g "ai" in
  let br = Dfg.input g "br" and bi = Dfg.input g "bi" in
  let rr = Dfg.binop g Op.Sub (Dfg.binop g Op.Mul ar br) (Dfg.binop g Op.Mul ai bi) in
  let ri = Dfg.binop g Op.Add (Dfg.binop g Op.Mul ar bi) (Dfg.binop g Op.Mul ai br) in
  let cr = Dfg.add ~name:"cr" g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:rr ~dst:cr ~port:0;
  Dfg.add_edge g ~src:cr ~dst:cr ~port:1 ~dist:1;
  let ci = Dfg.add ~name:"ci" g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:ri ~dst:ci ~port:0;
  Dfg.add_edge g ~src:ci ~dst:ci ~port:1 ~dist:1;
  ignore (Dfg.output g "cr" cr);
  ignore (Dfg.output g "ci" ci);
  {
    name = "cmac";
    description = "complex multiply-accumulate (two coupled accumulators)";
    dfg = g;
    init = no_init;
    inputs =
      (fun n ->
        [
          ("ar", stream n (fun i -> (i mod 5) - 2));
          ("ai", stream n (fun i -> (i mod 3) - 1));
          ("br", stream n (fun i -> 4 - (i mod 7)));
          ("bi", stream n (fun i -> (i mod 4) - 2));
        ]);
    memory = [];
    outputs = [ "cr"; "ci" ];
    has_branch = false;
  }

(* ---------- 3-tap moving average (adder-only FIR) ---------- *)
let moving_average3 () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let s1 = Dfg.add g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:x ~dst:s1 ~port:0;
  Dfg.add_edge g ~src:x ~dst:s1 ~port:1 ~dist:1;
  let s2 = Dfg.add g (Op.Binop Op.Add) in
  Dfg.add_edge g ~src:s1 ~dst:s2 ~port:0;
  Dfg.add_edge g ~src:x ~dst:s2 ~port:1 ~dist:2;
  let three = Dfg.const g 3 in
  let avg = Dfg.binop g Op.Div s2 three in
  ignore (Dfg.output g "avg" avg);
  {
    name = "moving-avg3";
    description = "3-tap moving average (adder-only, window in time)";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("x", stream n (fun i -> ((i * 5) mod 23) - 3)) ]);
    memory = [];
    outputs = [ "avg" ];
    has_branch = false;
  }

(* ---------- alpha blend: out = (a*alpha + b*(256-alpha)) >> 8 ---------- *)
let alpha_blend () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" and b = Dfg.input g "b" and alpha = Dfg.input g "alpha" in
  let c256 = Dfg.const g 256 and c8 = Dfg.const g 8 in
  let inv = Dfg.binop g Op.Sub c256 alpha in
  let pa = Dfg.binop g Op.Mul a alpha in
  let pb = Dfg.binop g Op.Mul b inv in
  let s = Dfg.binop g Op.Add pa pb in
  let r = Dfg.binop g Op.Shr s c8 in
  ignore (Dfg.output g "out" r);
  {
    name = "alpha-blend";
    description = "out = (a*alpha + b*(256-alpha)) >> 8 (multimedia DAG)";
    dfg = g;
    init = no_init;
    inputs =
      (fun n ->
        [
          ("a", stream n (fun i -> (i * 11) mod 256));
          ("b", stream n (fun i -> (i * 29) mod 256));
          ("alpha", stream n (fun i -> (i * 7) mod 256));
        ]);
    memory = [];
    outputs = [ "out" ];
    has_branch = false;
  }

(* ---------- 1D 3-tap convolution with store (conv + writeback) ---------- *)
let conv3_store () =
  let g = Dfg.create () in
  let i = Dfg.input g "i" in
  let one = Dfg.const g 1 in
  let l0 = Dfg.load g "sig" i in
  let i1 = Dfg.binop g Op.Add i one in
  let l1 = Dfg.load g "sig" i1 in
  let i2 = Dfg.binop g Op.Add i1 one in
  let l2 = Dfg.load g "sig" i2 in
  let c0 = Dfg.const g 2 and c1 = Dfg.const g 5 and c2 = Dfg.const g (-1) in
  let s =
    Dfg.binop g Op.Add
      (Dfg.binop g Op.Add (Dfg.binop g Op.Mul l0 c0) (Dfg.binop g Op.Mul l1 c1))
      (Dfg.binop g Op.Mul l2 c2)
  in
  ignore (Dfg.store g "res" i s);
  ignore (Dfg.output g "y" s);
  {
    name = "conv3-store";
    description = "3-tap convolution with loads and a store";
    dfg = g;
    init = no_init;
    inputs = (fun n -> [ ("i", stream n (fun i -> i)) ]);
    memory = [ ("sig", Array.init 64 (fun k -> ((k * 3) mod 19) - 9)); ("res", Array.make 64 0) ];
    outputs = [ "y" ];
    has_branch = false;
  }

let all () =
  [
    dot_product (); saxpy (); fir4 (); iir2 (); sobel_row (); horner (); butterfly ();
    running_max (); absdiff (); mix_round (); matvec2 (); prefix_sum (); cmac ();
    moving_average3 (); alpha_blend (); conv3_store ();
  ]

let find name =
  match List.find_opt (fun k -> k.name = name) (all ()) with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Kernels.find: unknown kernel %s" name)

(* Small kernels on which the exact methods finish quickly. *)
let small_suite () = [ dot_product (); saxpy (); horner (); matvec2 (); absdiff () ]

(* The full suite for heuristic comparisons. *)
let full_suite () = all ()

let eval_reference k ~iters =
  let env = Ocgra_dfg.Eval.env_of_streams ~memory:k.memory (k.inputs iters) in
  Ocgra_dfg.Eval.run ~init:k.init k.dfg env ~iters

lib/workloads/random_dfg.ml: Array Dfg Hashtbl List Ocgra_dfg Ocgra_util Op Printf

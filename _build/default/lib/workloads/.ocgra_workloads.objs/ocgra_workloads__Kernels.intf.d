lib/workloads/kernels.mli: Ocgra_dfg

lib/workloads/kernels.ml: Array Dfg List Ocgra_dfg Op Printf

lib/workloads/random_dfg.mli: Ocgra_dfg Ocgra_util

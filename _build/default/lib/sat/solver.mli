(** CDCL SAT solver in the MiniSat lineage: two-watched-literal
    propagation, VSIDS decision heap, first-UIP learning with
    backjumping, phase saving, Luby restarts.

    Literals: variable [v] (1-based) gives literals [pos v] and
    [neg v]; [negate] flips polarity. *)

type t
type lit = int

val pos : int -> lit
val neg : int -> lit
val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool
val lit_to_string : lit -> string

type result = Sat | Unsat | Unknown

val create : unit -> t
val n_vars : t -> int

(** Fresh variable (1-based index). *)
val new_var : t -> int

val new_vars : t -> int -> int list

(** Adding a clause backtracks to the root level first; empty or
    immediately-contradicted clauses make the instance permanently
    UNSAT. Raises [Invalid_argument] on unknown variables. *)
val add_clause : t -> lit list -> unit

(** [solve ?max_conflicts ?should_stop ?assumptions t]: [Unknown] when
    the conflict budget runs out or [should_stop] (polled at amortised
    checkpoints, e.g. a wall-clock deadline) returns true; UNSAT under
    assumptions leaves the instance usable. After [Sat], read the model
    with {!value}. *)
val solve :
  ?max_conflicts:int -> ?should_stop:(unit -> bool) -> ?assumptions:lit list -> t -> result

(** Model value of a variable (meaningful after [Sat]). *)
val value : t -> int -> bool

(** (conflicts, decisions, propagations) since creation. *)
val stats : t -> int * int * int

lib/sat/solver.ml: Array Buffer List Printf

lib/sat/encodings.ml: Array List Solver

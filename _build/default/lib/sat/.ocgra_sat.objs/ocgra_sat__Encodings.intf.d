lib/sat/encodings.mli: Solver

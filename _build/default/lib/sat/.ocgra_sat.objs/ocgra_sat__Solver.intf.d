lib/sat/solver.mli:

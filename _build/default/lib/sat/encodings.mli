(** Cardinality encodings over solver literals: the SAT mapper's
    exactly-one (each op gets one slot) and at-most-k (RF capacity)
    constraints. *)

val at_most_one_pairwise : Solver.t -> Solver.lit list -> unit

(** Sinz sequential encoding (linear, auxiliary variables). *)
val at_most_one_sequential : Solver.t -> Solver.lit list -> unit

(** Pairwise below [threshold] (default 6), sequential above. *)
val at_most_one : ?threshold:int -> Solver.t -> Solver.lit list -> unit

val at_least_one : Solver.t -> Solver.lit list -> unit
val exactly_one : ?threshold:int -> Solver.t -> Solver.lit list -> unit

(** Sequential-counter encoding. *)
val at_most_k : Solver.t -> Solver.lit list -> int -> unit

(** [implies s a bs] adds a -> (b1 or b2 or ...). *)
val implies : Solver.t -> Solver.lit -> Solver.lit list -> unit

(** SMT-based mapping ([44], restricted routing networks): placement is
    propositional (one op per PE), the schedule lives in integer
    difference logic with placement-conditional atoms; routing is lazy
    with placement blocking clauses. *)

(** (mapping, attempts, proven optimal at MII). *)
val map :
  ?routing_retries:int ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

(** Shared machinery of the spatial meta-heuristic mappers: placement
    genomes (node -> PE), collision + wirelength cost, and strict
    extraction (pipeline stages + routing). *)

val capable_pes : Ocgra_core.Problem.t -> int -> int list
val random_genome : Ocgra_core.Problem.t -> Ocgra_util.Rng.t -> int array

(** [genome_cost p hop_table genome]: collisions dominate, then
    wirelength. *)
val genome_cost : Ocgra_core.Problem.t -> int array array -> int array -> int

(** Fixed PEs from the genome, greedy pipeline stages, strict routes. *)
val extract :
  Ocgra_core.Problem.t -> ?time_slack:int -> int array -> Ocgra_core.Mapping.t option

val mutate : Ocgra_core.Problem.t -> Ocgra_util.Rng.t -> int array -> int array
val crossover : Ocgra_util.Rng.t -> int array -> int array -> int array

(** Incremental place-and-route state shared by the constructive
    mappers: claim a node on an FU slot, route every dependence whose
    other endpoint is already placed, roll back cleanly on failure. *)

type t = {
  problem : Ocgra_core.Problem.t;
  ii : int;
  occ : Ocgra_core.Occupancy.t;
  binding : (int * int) array;  (** (-1, -1) = unplaced *)
  placed : bool array;
  routes : Ocgra_core.Mapping.route option array;
  edges : Ocgra_dfg.Dfg.edge array;
  incident : int list array;  (** node -> indices of incident edges *)
}

val create : Ocgra_core.Problem.t -> ii:int -> t
val is_placed : t -> int -> bool
val binding_of : t -> int -> int * int

(** Claim a route's resources, rolling back on internal (modulo
    self-) conflicts; registers the route on success. *)
val try_claim_route : t -> int -> Ocgra_core.Mapping.route -> bool

val release_edge : t -> int -> unit

(** Strict-route one edge whose endpoints are both placed. *)
val route_edge : t -> int -> bool

(** Place node [v] and route all its edges toward placed endpoints;
    rolls everything back and returns false on any failure. *)
val place : t -> int -> pe:int -> time:int -> bool

val unplace : t -> int -> unit
val all_placed : t -> bool
val to_mapping : t -> Ocgra_core.Mapping.t option

(** Feasible (earliest, latest) start window of [v] on [pe] given the
    placed neighbours, from hop-distance lower bounds; empty when
    est > lst. *)
val time_window : t -> int array array -> int -> int -> int * int

(* Incremental place-and-route state shared by the constructive
   mappers: claim a node on an FU slot, route every dependence whose
   other endpoint is already placed, roll back cleanly on failure.

   This is the CGRA equivalent of the FPGA place-and-route inner loop
   the survey points to as one ancestor of the field. *)

open Ocgra_dfg
open Ocgra_arch
open Ocgra_core

type t = {
  problem : Problem.t;
  ii : int;
  occ : Occupancy.t;
  binding : (int * int) array; (* node -> (pe, time); (-1, -1) = unplaced *)
  placed : bool array;
  routes : Mapping.route option array; (* per edge index *)
  edges : Dfg.edge array;
  incident : int list array; (* node -> indices of incident edges *)
}

let create (problem : Problem.t) ~ii =
  let dfg = problem.dfg in
  let n = Dfg.node_count dfg in
  let edges = Array.of_list (Dfg.edges dfg) in
  let incident = Array.make n [] in
  Array.iteri
    (fun i (e : Dfg.edge) ->
      incident.(e.src) <- i :: incident.(e.src);
      if e.dst <> e.src then incident.(e.dst) <- i :: incident.(e.dst))
    edges;
  {
    problem;
    ii;
    occ = Occupancy.create ~cgra:problem.cgra ~npe:(Cgra.pe_count problem.cgra) ~ii ();
    binding = Array.make n (-1, -1);
    placed = Array.make n false;
    routes = Array.make (Array.length edges) None;
    edges;
    incident;
  }

let is_placed t v = t.placed.(v)
let binding_of t v = t.binding.(v)

(* Claim a route's resources, rolling back on internal conflict (a
   route that wraps around the II can collide with itself). *)
let try_claim_route t edge_idx (route : Mapping.route) =
  let cgra = t.problem.cgra in
  let claimed = ref [] in
  let ok = ref true in
  List.iter
    (fun step ->
      if !ok then
        match step with
        | Mapping.Hop { pe; time } ->
            if Occupancy.fu_free t.occ ~pe ~time then begin
              Occupancy.claim_fu t.occ ~pe ~time (Occupancy.U_route edge_idx);
              claimed := step :: !claimed
            end
            else ok := false
        | Mapping.Hold { pe; from_; until } ->
            (* claim cycle by cycle: a hold spanning >= II cycles lands
               several times on the same modulo slot, so a single
               up-front capacity test would under-count its own load *)
            let size = Cgra.effective_rf_size cgra pe in
            let rec claim_cycles cy =
              if cy > until then true
              else if Occupancy.rf_count t.occ ~pe ~time:cy < size then begin
                Occupancy.claim_hold t.occ ~pe ~from_:(cy - 1) ~until:cy;
                claimed := Mapping.Hold { pe; from_ = cy - 1; until = cy } :: !claimed;
                claim_cycles (cy + 1)
              end
              else false
            in
            if not (claim_cycles (from_ + 1)) then ok := false)
    route;
  if !ok then begin
    t.routes.(edge_idx) <- Some route;
    true
  end
  else begin
    List.iter
      (function
        | Mapping.Hop { pe; time } -> Occupancy.release_fu t.occ ~pe ~time
        | Mapping.Hold { pe; from_; until } -> Occupancy.release_hold t.occ ~pe ~from_ ~until)
      !claimed;
    false
  end

let release_edge t edge_idx =
  match t.routes.(edge_idx) with
  | None -> ()
  | Some route ->
      Occupancy.release_route t.occ route;
      t.routes.(edge_idx) <- None

(* Route one edge whose endpoints are both placed. *)
let route_edge t edge_idx =
  let e = t.edges.(edge_idx) in
  let src = t.binding.(e.src) and dst = t.binding.(e.dst) in
  let lat = Op.latency (Dfg.op t.problem.dfg e.src) in
  let cm = Route.strict t.problem.cgra t.occ in
  match Route.route_edge t.problem.cgra cm ~ii:t.ii ~src ~dst ~lat ~dist:e.dist with
  | None -> false
  | Some (route, _) -> try_claim_route t edge_idx route

(* Place node [v] at (pe, time) and route all its edges toward already
   placed endpoints; rolls everything back and returns false on any
   failure. *)
let place t v ~pe ~time =
  let dfg = t.problem.dfg in
  let op = Dfg.op dfg v in
  if t.placed.(v) then invalid_arg "Place_route.place: node already placed";
  if not (Cgra.supports t.problem.cgra pe op) then false
  else if time < 0 || time >= Problem.max_time t.problem then false
  else if not (Occupancy.fu_free t.occ ~pe ~time) then false
  else begin
    Occupancy.claim_fu t.occ ~pe ~time (Occupancy.U_node v);
    t.binding.(v) <- (pe, time);
    t.placed.(v) <- true;
    let to_route =
      List.filter
        (fun i ->
          let e = t.edges.(i) in
          t.placed.(e.src) && t.placed.(e.dst) && t.routes.(i) = None)
        t.incident.(v)
    in
    let rec route_all routed = function
      | [] -> true
      | i :: rest ->
          if route_edge t i then route_all (i :: routed) rest
          else begin
            List.iter (release_edge t) routed;
            false
          end
    in
    if route_all [] to_route then true
    else begin
      Occupancy.release_fu t.occ ~pe ~time;
      t.binding.(v) <- (-1, -1);
      t.placed.(v) <- false;
      false
    end
  end

let unplace t v =
  if t.placed.(v) then begin
    let pe, time = t.binding.(v) in
    (* release the routes of incident edges first *)
    List.iter (fun i -> release_edge t i) t.incident.(v);
    Occupancy.release_fu t.occ ~pe ~time;
    t.binding.(v) <- (-1, -1);
    t.placed.(v) <- false
  end

let all_placed t = Array.for_all Fun.id t.placed

let to_mapping t =
  if not (all_placed t) then None
  else begin
    let routes =
      Array.map (function Some r -> r | None -> []) t.routes
    in
    Some { Mapping.ii = t.ii; binding = Array.copy t.binding; routes }
  end

(* Earliest feasible start time of [v] on [pe] given the already placed
   neighbours (dependence timing with hop-count lower bounds), and the
   latest deadline imposed by placed successors.  Returns (est, lst);
   est > lst means no window. *)
let time_window t hop_table v pe =
  let dfg = t.problem.dfg in
  let est = ref 0 and lst = ref (Problem.max_time t.problem - 1) in
  List.iter
    (fun i ->
      let e = t.edges.(i) in
      (* a value readable at cycle a on PE p can first be consumed on PE
         q at cycle a + max(0, hops(p,q) - 1): the consumer reads from a
         neighbour's output register, so the last hop is free *)
      if e.dst = v && t.placed.(e.src) && e.src <> v then begin
        let pu, tu = t.binding.(e.src) in
        let lat = Op.latency (Dfg.op dfg e.src) in
        let hops = hop_table.(pu).(pe) in
        if hops < Ocgra_graph.Paths.unreachable then
          est := max !est (tu + lat + max 0 (hops - 1) - (e.dist * t.ii))
      end;
      if e.src = v && t.placed.(e.dst) && e.dst <> v then begin
        let pw, tw = t.binding.(e.dst) in
        let lat = Op.latency (Dfg.op dfg v) in
        let hops = hop_table.(pe).(pw) in
        if hops < Ocgra_graph.Paths.unreachable then
          lst := min !lst (tw + (e.dist * t.ii) - lat - max 0 (hops - 1))
      end)
    t.incident.(v);
  (max 0 !est, !lst)

(** GenMap-style spatial mapping by genetic algorithm ([19]). *)

(** (mapping, attempts). *)
val map :
  ?config:Ocgra_meta.Ga.config ->
  ?extractions:int ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int

val mapper : Ocgra_core.Mapper.t

(** Resource-constrained modulo list scheduling without placement: the
    decoupled first phase of the Table I "Scheduling" row. Resources
    are counted per functional class and modulo slot. *)

(** Times per node respecting dependences and class capacities, or
    [None] when the II is infeasible for this resource mix. *)
val modulo_list_schedule :
  ?horizon_slack:int -> Ocgra_core.Problem.t -> Ocgra_util.Rng.t -> ii:int -> int array option

(** The named heuristic mappers built on the constructive engine. *)

(** Temporal x heuristics: iterative modulo scheduling with integrated
    greedy placement and routing ([12], [36], [61] lineage). *)
val modulo_mapper : Ocgra_core.Mapper.t

(** Spatial x heuristics: the same engine pinned at II = 1. *)
val greedy_spatial_mapper : Ocgra_core.Mapper.t

(** The bare constructive engine for either problem kind with a deep
    restart budget: the last-resort tier of a fallback chain.  Not part
    of the Table I registry list; resolvable by name via
    {!Registry.find}. *)
val constructive_mapper : Ocgra_core.Mapper.t

lib/mappers/bb_temporal.ml: Array Constructive Deadline Dfg Fun List Mapper Mapping Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_util Place_route Problem Taxonomy

lib/mappers/bb_temporal.mli: Ocgra_core Ocgra_util

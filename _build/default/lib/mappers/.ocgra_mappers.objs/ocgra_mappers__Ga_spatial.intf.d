lib/mappers/ga_spatial.mli: Ocgra_core Ocgra_meta Ocgra_util

lib/mappers/sched.mli: Ocgra_core Ocgra_util

lib/mappers/edge_centric.ml: Array Constructive Deadline Dfg Fun List Mapper Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_util Op Place_route Problem Route Taxonomy

lib/mappers/cp_temporal.mli: Ocgra_core Ocgra_util

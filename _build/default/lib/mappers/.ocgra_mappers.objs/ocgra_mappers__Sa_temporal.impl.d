lib/mappers/sa_temporal.ml: Array Deadline Dfg Finalize Fun List Mapper Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_meta Ocgra_util Op Problem Taxonomy

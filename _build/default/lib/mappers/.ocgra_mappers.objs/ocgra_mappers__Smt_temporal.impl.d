lib/mappers/smt_temporal.ml: Array Deadline Dfg Finalize Fun List Mapper Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Ocgra_sat Ocgra_smt Op Printf Problem Taxonomy

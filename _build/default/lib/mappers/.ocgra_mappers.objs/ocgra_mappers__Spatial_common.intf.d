lib/mappers/spatial_common.mli: Ocgra_core Ocgra_util

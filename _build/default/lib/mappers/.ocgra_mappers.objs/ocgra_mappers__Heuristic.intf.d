lib/mappers/heuristic.mli: Ocgra_core

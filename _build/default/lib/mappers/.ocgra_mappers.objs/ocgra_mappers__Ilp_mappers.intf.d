lib/mappers/ilp_mappers.mli: Ocgra_core Ocgra_util

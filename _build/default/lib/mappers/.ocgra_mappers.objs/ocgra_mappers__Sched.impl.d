lib/mappers/sched.ml: Array Constructive Dfg Fun Hashtbl List Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_util Op Option Problem

lib/mappers/graph_drawing.mli: Ocgra_core Ocgra_util

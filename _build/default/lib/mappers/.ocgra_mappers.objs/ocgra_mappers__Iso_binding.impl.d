lib/mappers/iso_binding.ml: Array Deadline Dfg Hashtbl List Mapper Mapping Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Ocgra_util Op Problem Sched Taxonomy

lib/mappers/constructive.mli: Ocgra_core Ocgra_dfg Ocgra_util Place_route

lib/mappers/spatial_common.ml: Array Dfg Fun List Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Ocgra_util Place_route Problem

lib/mappers/graph_drawing.ml: Array Deadline Dfg Float List Mapper Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Ocgra_util Problem Spatial_common Taxonomy

lib/mappers/sat_temporal.mli: Ocgra_core Ocgra_util

lib/mappers/registry.mli: Ocgra_core

lib/mappers/iso_binding.mli: Ocgra_core Ocgra_util

lib/mappers/ga_spatial.ml: Mapper Ocgra_arch Ocgra_core Ocgra_meta Problem Spatial_common Taxonomy

lib/mappers/ga_spatial.ml: Deadline Mapper Ocgra_arch Ocgra_core Ocgra_meta Problem Spatial_common Taxonomy

lib/mappers/sa_spatial.mli: Ocgra_core Ocgra_meta Ocgra_util

lib/mappers/heuristic.ml: Constructive Mapper Ocgra_core Problem Taxonomy

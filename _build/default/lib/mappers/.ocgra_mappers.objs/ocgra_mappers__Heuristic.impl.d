lib/mappers/heuristic.ml: Constructive Deadline Mapper Ocgra_core Problem Taxonomy

lib/mappers/schedule_bind.mli: Ocgra_core Ocgra_util

lib/mappers/sat_temporal.ml: Array Deadline Dfg Fun Hashtbl List Mapper Mapping Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_sat Op Problem Taxonomy

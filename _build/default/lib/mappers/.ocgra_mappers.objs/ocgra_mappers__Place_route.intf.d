lib/mappers/place_route.mli: Ocgra_core Ocgra_dfg

lib/mappers/finalize.ml: Array Hashtbl List Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Pathfinder Place_route Problem

lib/mappers/constructive.ml: Array Deadline Dfg Fun List Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Ocgra_util Place_route Problem

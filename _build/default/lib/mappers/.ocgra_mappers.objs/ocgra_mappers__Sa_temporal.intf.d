lib/mappers/sa_temporal.mli: Ocgra_core Ocgra_meta Ocgra_util

lib/mappers/smt_temporal.mli: Ocgra_core Ocgra_util

lib/mappers/place_route.ml: Array Cgra Dfg Fun List Mapping Occupancy Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_graph Op Problem Route

lib/mappers/edge_centric.mli: Ocgra_core Ocgra_util

lib/mappers/finalize.mli: Ocgra_core

lib/mappers/cp_temporal.ml: Array Deadline Dfg Finalize Fun List Mapper Mii Ocgra_arch Ocgra_core Ocgra_cp Ocgra_dfg Ocgra_graph Ocgra_util Op Printf Problem Taxonomy

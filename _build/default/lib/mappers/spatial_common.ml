(* Shared machinery of the spatial meta-heuristic mappers (SA and GA):
   the genome is a placement vector node -> PE; the fitness prices PE
   collisions and wirelength; extraction assigns pipeline stages along
   a topological order and strict-routes with the real router. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

let capable_pes (p : Problem.t) v =
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  List.filter
    (fun pe -> Ocgra_arch.Cgra.supports p.cgra pe (Dfg.op p.dfg v))
    (List.init npe Fun.id)

let random_genome (p : Problem.t) rng =
  Array.init (Dfg.node_count p.dfg) (fun v -> Rng.choose_list rng (capable_pes p v))

(* Placement cost: collisions dominate, then wirelength. *)
let genome_cost (p : Problem.t) hop_table genome =
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  let usage = Array.make npe 0 in
  Array.iter (fun pe -> usage.(pe) <- usage.(pe) + 1) genome;
  let collisions = Array.fold_left (fun acc c -> acc + max 0 (c - 1)) 0 usage in
  let wire = ref 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      let h = hop_table.(genome.(e.src)).(genome.(e.dst)) in
      if h >= Ocgra_graph.Paths.unreachable then wire := !wire + 1000
      else wire := !wire + max 0 (h - 1))
    (Dfg.edges p.dfg);
  (1000 * collisions) + !wire

(* Strict extraction: fixed PEs from the genome, pipeline stages chosen
   greedily with the real router. *)
let extract (p : Problem.t) ?(time_slack = 8) genome =
  let state = Place_route.create p ~ii:1 in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let order =
    match Ocgra_graph.Topo.sort (Dfg.to_digraph p.dfg) with
    | Some o -> o
    | None -> invalid_arg "Spatial_common.extract: cyclic dist-0 subgraph"
  in
  let ok =
    List.for_all
      (fun v ->
        let pe = genome.(v) in
        let est, lst = Place_route.time_window state hop_table v pe in
        let upper = min lst (est + time_slack) in
        let rec try_time t =
          t <= upper && (Place_route.place state v ~pe ~time:t || try_time (t + 1))
        in
        est <= lst && try_time est)
      order
  in
  if ok then Place_route.to_mapping state else None

let mutate (p : Problem.t) rng genome =
  let g = Array.copy genome in
  let v = Rng.int rng (Array.length g) in
  g.(v) <- Rng.choose_list rng (capable_pes p v);
  g

let crossover rng a b =
  let n = Array.length a in
  let cut = Rng.int rng n in
  Array.init n (fun i -> if i < cut then a.(i) else b.(i))

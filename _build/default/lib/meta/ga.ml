(* Generational genetic algorithm with tournament selection and
   elitism.  GenMap-style spatial mapping evolves placement genomes
   with a router-based fitness; the engine is genome-agnostic.
   Fitness is maximized. *)

module Rng = Ocgra_util.Rng

type config = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
  elitism : int; (* individuals copied unchanged into the next generation *)
}

let default_config =
  {
    population = 40;
    generations = 60;
    crossover_rate = 0.9;
    mutation_rate = 0.3;
    tournament = 3;
    elitism = 2;
  }

type stats = { evaluations : int; best_generation : int }

let run ?(config = default_config) ?(stop_at = infinity) rng ~init ~crossover ~mutate ~fitness =
  let pop = Array.init config.population (fun _ -> init rng) in
  let fit = Array.map fitness pop in
  let evaluations = ref config.population in
  let best = ref pop.(0) and best_fit = ref fit.(0) and best_generation = ref 0 in
  let record gen =
    Array.iteri
      (fun i f ->
        if f > !best_fit then begin
          best_fit := f;
          best := pop.(i);
          best_generation := gen
        end)
      fit
  in
  record 0;
  let tournament_pick () =
    let best_i = ref (Rng.int rng config.population) in
    for _ = 2 to config.tournament do
      let j = Rng.int rng config.population in
      if fit.(j) > fit.(!best_i) then best_i := j
    done;
    pop.(!best_i)
  in
  let gen = ref 0 in
  while !gen < config.generations && !best_fit < stop_at do
    incr gen;
    (* rank indices by fitness for elitism *)
    let order = Array.init config.population Fun.id in
    Array.sort (fun a b -> compare fit.(b) fit.(a)) order;
    let next = Array.make config.population pop.(0) in
    for e = 0 to min (config.elitism - 1) (config.population - 1) do
      next.(e) <- pop.(order.(e))
    done;
    for i = config.elitism to config.population - 1 do
      let a = tournament_pick () in
      let child =
        if Rng.float rng 1.0 < config.crossover_rate then crossover rng a (tournament_pick ())
        else a
      in
      let child = if Rng.float rng 1.0 < config.mutation_rate then mutate rng child else child in
      next.(i) <- child
    done;
    Array.blit next 0 pop 0 config.population;
    Array.iteri
      (fun i g ->
        fit.(i) <- fitness g;
        incr evaluations)
      pop;
    record !gen
  done;
  (!best, !best_fit, { evaluations = !evaluations; best_generation = !best_generation })

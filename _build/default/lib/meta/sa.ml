(* Generic simulated annealing.

   DRESC-style temporal mapping and SPR/SNAFU-style spatial mapping are
   both local searches over placements with a slowly-hardening
   acceptance rule; they differ only in state, neighbourhood and cost,
   which callers plug in here.  Cost is minimized. *)

module Rng = Ocgra_util.Rng

type config = {
  initial_temp : float;
  cooling : float; (* geometric factor per plateau, in (0, 1) *)
  steps_per_temp : int;
  min_temp : float;
  max_steps : int;
}

let default_config =
  { initial_temp = 10.0; cooling = 0.92; steps_per_temp = 64; min_temp = 1e-3; max_steps = 100_000 }

type stats = { steps : int; accepted : int; best_step : int }

let run ?(config = default_config) rng ~init ~neighbour ~cost =
  let current = ref init in
  let current_cost = ref (cost init) in
  let best = ref init in
  let best_cost = ref !current_cost in
  let temp = ref config.initial_temp in
  let steps = ref 0 and accepted = ref 0 and best_step = ref 0 in
  let finished = ref false in
  while not !finished do
    for _ = 1 to config.steps_per_temp do
      if !steps < config.max_steps && !best_cost > 0.0 then begin
        incr steps;
        let candidate = neighbour rng !current in
        let c = cost candidate in
        let delta = c -. !current_cost in
        let accept = delta <= 0.0 || Rng.float rng 1.0 < exp (-.delta /. !temp) in
        if accept then begin
          incr accepted;
          current := candidate;
          current_cost := c;
          if c < !best_cost then begin
            best := candidate;
            best_cost := c;
            best_step := !steps
          end
        end
      end
    done;
    temp := !temp *. config.cooling;
    if !temp < config.min_temp || !steps >= config.max_steps || !best_cost <= 0.0 then
      finished := true
  done;
  (!best, !best_cost, { steps = !steps; accepted = !accepted; best_step = !best_step })

lib/meta/qea.ml: Array Float Ocgra_util

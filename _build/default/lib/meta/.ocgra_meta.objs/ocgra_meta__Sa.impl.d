lib/meta/sa.ml: Ocgra_util

lib/meta/ga.mli: Ocgra_util

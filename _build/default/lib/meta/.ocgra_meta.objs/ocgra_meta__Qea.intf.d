lib/meta/qea.mli: Ocgra_util

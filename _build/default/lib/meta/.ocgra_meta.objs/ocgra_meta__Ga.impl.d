lib/meta/ga.ml: Array Fun Ocgra_util

lib/meta/sa.mli: Ocgra_util

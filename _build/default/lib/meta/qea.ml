(* Quantum-inspired evolutionary algorithm over fixed-length binary
   genomes ([48], Lee et al., uses QEA for binding).

   Each "qubit" is a probability of observing bit = 1; a generation
   observes the population, evaluates the classical genomes, and
   rotates every qubit toward the best genome seen so far.  Fitness is
   maximized. *)

module Rng = Ocgra_util.Rng

type config = {
  population : int;
  generations : int;
  rotation : float; (* probability shift per generation toward the best bits *)
}

let default_config = { population = 20; generations = 80; rotation = 0.05 }

let run ?(config = default_config) ?(stop_at = infinity) rng ~n_bits ~fitness =
  let q = Array.make n_bits 0.5 in
  let observe () = Array.init n_bits (fun i -> Rng.float rng 1.0 < q.(i)) in
  let best = ref (observe ()) in
  let best_fit = ref (fitness !best) in
  let evaluations = ref 1 in
  let gen = ref 0 in
  while !gen < config.generations && !best_fit < stop_at do
    incr gen;
    for _ = 1 to config.population do
      let genome = observe () in
      let f = fitness genome in
      incr evaluations;
      if f > !best_fit then begin
        best_fit := f;
        best := genome
      end
    done;
    (* rotate toward the best genome, clamped away from 0/1 so the
       population keeps exploring *)
    for i = 0 to n_bits - 1 do
      let target = if !best.(i) then 1.0 else 0.0 in
      let moved = q.(i) +. (config.rotation *. (target -. q.(i)) /. max 0.5 (Float.abs (target -. q.(i)))) in
      q.(i) <- Float.max 0.02 (Float.min 0.98 moved)
    done
  done;
  (!best, !best_fit, !evaluations)

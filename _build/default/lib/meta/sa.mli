(** Generic simulated annealing (geometric cooling, Metropolis
    acceptance); cost is minimized, stopping early at cost 0. *)

type config = {
  initial_temp : float;
  cooling : float;  (** geometric factor per plateau, in (0, 1) *)
  steps_per_temp : int;
  min_temp : float;
  max_steps : int;
}

val default_config : config

type stats = { steps : int; accepted : int; best_step : int }

(** Returns (best state, best cost, stats). *)
val run :
  ?config:config ->
  Ocgra_util.Rng.t ->
  init:'s ->
  neighbour:(Ocgra_util.Rng.t -> 's -> 's) ->
  cost:('s -> float) ->
  's * float * stats

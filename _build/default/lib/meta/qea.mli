(** Quantum-inspired evolutionary algorithm over binary genomes: each
    "qubit" is a probability of observing 1; generations observe,
    evaluate, and rotate the probabilities toward the best genome.
    Fitness is maximized. *)

type config = {
  population : int;
  generations : int;
  rotation : float;  (** probability shift per generation toward the best *)
}

val default_config : config

(** Returns (best genome, best fitness, evaluations). *)
val run :
  ?config:config ->
  ?stop_at:float ->
  Ocgra_util.Rng.t ->
  n_bits:int ->
  fitness:(bool array -> float) ->
  bool array * float * int

(** Generational genetic algorithm with tournament selection and
    elitism; fitness is maximized, stopping early at [stop_at]. *)

type config = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
  elitism : int;  (** individuals copied unchanged into each generation *)
}

val default_config : config

type stats = { evaluations : int; best_generation : int }

(** Returns (best genome, best fitness, stats). *)
val run :
  ?config:config ->
  ?stop_at:float ->
  Ocgra_util.Rng.t ->
  init:(Ocgra_util.Rng.t -> 'g) ->
  crossover:(Ocgra_util.Rng.t -> 'g -> 'g -> 'g) ->
  mutate:(Ocgra_util.Rng.t -> 'g -> 'g) ->
  fitness:('g -> float) ->
  'g * float * stats

lib/arch/pe.mli: Ocgra_dfg

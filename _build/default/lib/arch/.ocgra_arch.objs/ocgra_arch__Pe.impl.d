lib/arch/pe.ml: List Ocgra_dfg Op Printf String

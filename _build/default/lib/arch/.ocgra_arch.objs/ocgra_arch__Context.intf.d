lib/arch/context.mli: Cgra Ocgra_dfg

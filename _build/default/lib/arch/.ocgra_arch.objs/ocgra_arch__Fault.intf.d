lib/arch/fault.mli:

lib/arch/context.ml: Array Buffer Cgra Int64 Ocgra_dfg Op Printf

lib/arch/topology.ml: Fun List

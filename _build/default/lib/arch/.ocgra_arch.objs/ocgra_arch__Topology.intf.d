lib/arch/topology.mli:

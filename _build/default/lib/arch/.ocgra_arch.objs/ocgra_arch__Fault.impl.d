lib/arch/fault.ml: List Printf Stdlib String

lib/arch/cgra.ml: Array Buffer Fault Fun List Ocgra_dfg Ocgra_graph Ocgra_util Op Pe Printf Topology

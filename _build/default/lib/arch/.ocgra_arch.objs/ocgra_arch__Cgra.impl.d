lib/arch/cgra.ml: Array Buffer Fun List Ocgra_dfg Ocgra_graph Op Pe Printf Topology

lib/arch/cgra.mli: Ocgra_dfg Ocgra_graph Pe Topology

lib/arch/cgra.mli: Fault Ocgra_dfg Ocgra_graph Pe Topology

(* Interconnect topologies between cells of the array.

   The classic design points of the surveyed architectures: 4-neighbour
   mesh (MorphoSys, ADRES default), torus (wrap-around), mesh-plus with
   diagonals, one-hop mesh (links skipping one cell), and a fully
   connected crossbar as the VLIW-like upper bound. *)

type t = Mesh | Torus | Diagonal | One_hop | Full

let to_string = function
  | Mesh -> "mesh"
  | Torus -> "torus"
  | Diagonal -> "diagonal"
  | One_hop -> "one-hop"
  | Full -> "full"

let of_string = function
  | "mesh" -> Mesh
  | "torus" -> Torus
  | "diagonal" -> Diagonal
  | "one-hop" | "one_hop" -> One_hop
  | "full" -> Full
  | s -> invalid_arg ("Topology.of_string: " ^ s)

(* Neighbours a value can be sent to in one cycle (excluding staying on
   the same PE, which is always possible).  Indices are r * cols + c. *)
let neighbours t ~rows ~cols pe =
  let r = pe / cols and c = pe mod cols in
  let inside (r, c) = r >= 0 && r < rows && c >= 0 && c < cols in
  let at (r, c) = (r * cols) + c in
  match t with
  | Mesh ->
      List.filter inside [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ] |> List.map at
  | Torus ->
      if rows = 1 && cols = 1 then []
      else
        List.sort_uniq compare
          (List.map at
             (List.filter
                (fun rc -> rc <> (r, c))
                [
                  (((r - 1) + rows) mod rows, c);
                  ((r + 1) mod rows, c);
                  (r, ((c - 1) + cols) mod cols);
                  (r, (c + 1) mod cols);
                ]))
  | Diagonal ->
      List.filter inside
        [
          (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1);
          (r - 1, c - 1); (r - 1, c + 1); (r + 1, c - 1); (r + 1, c + 1);
        ]
      |> List.map at
  | One_hop ->
      List.filter inside
        [
          (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1);
          (r - 2, c); (r + 2, c); (r, c - 2); (r, c + 2);
        ]
      |> List.map at
  | Full -> List.init (rows * cols) Fun.id |> List.filter (fun q -> q <> pe)

let all = [ Mesh; Torus; Diagonal; One_hop; Full ]

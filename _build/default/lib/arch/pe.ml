(* Processing element (reconfigurable cell) description.

   A PE declares the functional classes it implements, the size of its
   local register file, and whether its configuration word carries an
   immediate field.  Heterogeneity in the surveyed architectures
   (memory units in one column, multipliers on a subset of cells) is
   expressed by giving different PEs different class sets. *)

open Ocgra_dfg

type t = {
  classes : Op.func_class list;
  rf_size : int; (* local register file entries usable for routing in time *)
  has_const : bool; (* immediate field in the configuration word *)
}

let make ?(rf_size = 4) ?(has_const = true) classes = { classes; rf_size; has_const }

(* Every PE can forward values (route), mirroring the datapath muxes. *)
let has_class t c = c = Op.F_route || List.mem c t.classes

let supports t op =
  match op with
  | Op.Const _ -> t.has_const
  | _ -> has_class t (Op.func_class op)

(* Presets used by the standard architectures. *)
let full = make [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ]
let alu_only = make [ Op.F_alu ]
let alu_mul = make [ Op.F_alu; Op.F_mul ]
let mem_cell = make [ Op.F_alu; Op.F_mem; Op.F_io ]

let to_string t =
  Printf.sprintf "{%s; rf=%d%s}"
    (String.concat "," (List.map Op.func_class_to_string t.classes))
    t.rf_size
    (if t.has_const then "; const" else "")

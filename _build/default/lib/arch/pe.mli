(** Processing element (reconfigurable cell) description: functional
    classes, register-file size, immediate field. *)

type t = {
  classes : Ocgra_dfg.Op.func_class list;
  rf_size : int;  (** local register-file entries usable for routing in time *)
  has_const : bool;  (** immediate field in the configuration word *)
}

val make : ?rf_size:int -> ?has_const:bool -> Ocgra_dfg.Op.func_class list -> t

(** Routing ([F_route]) is implied by every cell. *)
val has_class : t -> Ocgra_dfg.Op.func_class -> bool

(** Can this cell execute the operation? *)
val supports : t -> Ocgra_dfg.Op.t -> bool

(** Presets. *)

val full : t
val alu_only : t
val alu_mul : t
val mem_cell : t
val to_string : t -> string

(** Interconnect topologies between cells: 4-neighbour mesh, torus,
    mesh-plus-diagonals, one-hop mesh, full crossbar. *)

type t = Mesh | Torus | Diagonal | One_hop | Full

val to_string : t -> string

(** Raises [Invalid_argument] on unknown names. *)
val of_string : string -> t

(** Cells reachable in one cycle from [pe] (excluding [pe] itself);
    indices are row-major [r * cols + c]. All topologies are
    symmetric. *)
val neighbours : t -> rows:int -> cols:int -> int -> int list

val all : t list

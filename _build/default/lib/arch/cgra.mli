(** A CGRA instance: a rows x cols array of PEs joined by a topology.
    Capability queries, neighbour sets and hop tables are the whole
    interface the mappers use, so any array describable here is
    mappable by all of them. *)

type t = {
  rows : int;
  cols : int;
  topology : Topology.t;
  pes : Pe.t array;  (** row-major, length rows * cols *)
  name : string;
}

(** Raises [Invalid_argument] when the PE array has the wrong length. *)
val make : ?name:string -> rows:int -> cols:int -> topology:Topology.t -> Pe.t array -> t

val pe_count : t -> int
val pe : t -> int -> Pe.t
val coords : t -> int -> int * int
val index : t -> row:int -> col:int -> int
val neighbours : t -> int -> int list

(** Including staying put. *)
val reachable_in_one : t -> int -> int list

val supports : t -> int -> Ocgra_dfg.Op.t -> bool
val capable_pes : t -> Ocgra_dfg.Op.t -> int list
val connectivity_graph : t -> Ocgra_graph.Digraph.t

(** [.(i).(j)] = minimum cycles to move a value from PE i to PE j. *)
val hop_table : t -> int array array

(** Homogeneous full-featured mesh: the "simple CGRA" of Fig. 2. *)
val uniform : ?topology:Topology.t -> ?rf_size:int -> rows:int -> cols:int -> unit -> t

(** ADRES-flavoured heterogeneity: memory and I/O in column 0,
    multipliers on even cells. *)
val adres_like : ?topology:Topology.t -> ?rf_size:int -> rows:int -> cols:int -> unit -> t

(** The CPU-like end of the Fig. 1 spectrum: one full PE. *)
val single_pe : ?rf_size:int -> unit -> t

val describe : t -> string

(* Resource fault model for degraded arrays.

   A fault names one physical resource of the CGRA that manufacturing
   defects, ageing, or soft-error screening has taken out of service.
   Mapping onto the degraded array means no binding or route may touch
   a faulted resource; the fault set travels with the [Cgra.t] so every
   mapper, the validator and the simulator see the same degradation. *)

type t =
  | Pe_down of int  (** the whole cell is unusable *)
  | Link_down of int * int  (** the directed link src -> dst is unusable *)
  | Fu_slot_dead of int * int
      (** (pe, slot): config-memory slot [slot] of the PE is dead — the
          FU may not fire (and no value may hop through it) at any cycle
          [t] with [t mod ii = slot], for mappings with [ii > slot]. *)
  | Rf_reduced of int * int
      (** (pe, lost): [lost] registers of the PE's local file are dead;
          the effective capacity is reduced accordingly (clamped at 0). *)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string = function
  | Pe_down pe -> Printf.sprintf "pe-down %d" pe
  | Link_down (src, dst) -> Printf.sprintf "link-down %d->%d" src dst
  | Fu_slot_dead (pe, slot) -> Printf.sprintf "fu-slot-dead pe %d slot %d" pe slot
  | Rf_reduced (pe, lost) -> Printf.sprintf "rf-reduced pe %d by %d" pe lost

let list_to_string faults =
  match faults with
  | [] -> "none"
  | _ -> String.concat ", " (List.map to_string faults)

(** Configuration word model (Fig. 2c): the raw mux-select values that
    define the hardware/software contract. *)

(** Operand source selector: the PE's input mux. *)
type source =
  | Src_none
  | Src_dir of int  (** index into the PE's neighbour list *)
  | Src_self  (** own output register *)
  | Src_rf of int  (** register-file entry (rotating, logical index) *)
  | Src_const  (** immediate field *)

type slot = {
  opcode : int;
  srcs : source array;  (** length 3: operand ports *)
  const : int;  (** immediate / stream id / array id *)
  rf_we : bool;
  rf_waddr : int;
}

val nop_slot : slot

(** One configuration of the whole array (one slot per PE). *)
type t = slot array

val opcode_of_op : Ocgra_dfg.Op.t -> int
val opcode_name : int -> string

(** String interning for stream and array names carried in the const
    field. *)
module Dict : sig
  type t

  val create : unit -> t
  val intern : t -> string -> int
  val name : t -> int -> string
end

(** Build the slot for an operation, putting its payload (immediate,
    stream id, array id) into the const field. *)
val slot_of_op : Dict.t -> Ocgra_dfg.Op.t -> source array -> slot

(** 53-bit word layout: opcode:6 | src0:6 | src1:6 | src2:6 | rf_we:1 |
    rf_waddr:4 | const:24 (two's complement). [decode_slot] inverts
    [encode_slot] exactly (property-tested). *)
val encode_source : source -> int

val decode_source : int -> source
val encode_slot : slot -> int64
val decode_slot : int64 -> slot
val source_to_string : source -> string
val pp_slot : slot -> string

(** Pretty-print a context memory (skipping NOP slots). *)
val pp_contexts : t array -> Cgra.t -> string

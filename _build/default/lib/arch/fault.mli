(** Resource fault model for degraded arrays.

    A fault names one physical resource taken out of service.  The
    fault set is carried by the [Cgra.t] (see {!Cgra.with_faults}), so
    mappers, the validator and the simulator all see the same
    degradation. *)

type t =
  | Pe_down of int  (** the whole cell is unusable *)
  | Link_down of int * int  (** the directed link src -> dst is unusable *)
  | Fu_slot_dead of int * int
      (** (pe, slot): config-memory slot [slot] is dead — nothing may
          execute or pass through the PE at cycles [t] with
          [t mod ii = slot] (only binds for mappings with [ii > slot]). *)
  | Rf_reduced of int * int
      (** (pe, lost): the PE's register file loses [lost] entries. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

(** Comma-separated rendering; ["none"] for the empty list. *)
val list_to_string : t list -> string

(* The CGRA instance: a rows x cols array of PEs joined by a topology.

   This is the "CGRA model" every mapper takes as input (Section II.B
   of the paper): capability queries, neighbour sets and hop-distance
   tables are the only interface the mapping algorithms use, so any
   array describable here is mappable by all of them. *)

open Ocgra_dfg

type t = {
  rows : int;
  cols : int;
  topology : Topology.t;
  pes : Pe.t array; (* length rows * cols, row-major *)
  name : string;
}

let make ?(name = "cgra") ~rows ~cols ~topology pes =
  if Array.length pes <> rows * cols then invalid_arg "Cgra.make: wrong PE count";
  { rows; cols; topology; pes; name }

let pe_count t = t.rows * t.cols
let pe t i = t.pes.(i)
let coords t i = (i / t.cols, i mod t.cols)
let index t ~row ~col = (row * t.cols) + col

let neighbours t i = Topology.neighbours t.topology ~rows:t.rows ~cols:t.cols i

(* PEs a value on [i] can reach in one cycle, including staying put. *)
let reachable_in_one t i = i :: neighbours t i

let supports t i op = Pe.supports t.pes.(i) op

let capable_pes t op =
  List.filter (fun i -> supports t i op) (List.init (pe_count t) Fun.id)

let connectivity_graph t =
  let g = Ocgra_graph.Digraph.create ~capacity:(pe_count t) () in
  ignore (Ocgra_graph.Digraph.add_nodes g (pe_count t));
  for i = 0 to pe_count t - 1 do
    List.iter (fun j -> Ocgra_graph.Digraph.add_edge g i j) (neighbours t i)
  done;
  g

(* hops.(i).(j) = minimum number of cycles to move a value from PE i to
   PE j (0 on the diagonal). *)
let hop_table t = Ocgra_graph.Paths.all_pairs_hops (connectivity_graph t)

(* ---------- Standard instances ---------- *)

(* Homogeneous mesh where every cell does everything: the "simple CGRA"
   of Fig. 2. *)
let uniform ?(topology = Topology.Mesh) ?(rf_size = 4) ~rows ~cols () =
  let pe = Pe.make ~rf_size [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ] in
  make
    ~name:(Printf.sprintf "uniform-%dx%d-%s" rows cols (Topology.to_string topology))
    ~rows ~cols ~topology
    (Array.make (rows * cols) pe)

(* ADRES-flavoured heterogeneous array: memory and I/O restricted to the
   first column, multipliers on even cells only. *)
let adres_like ?(topology = Topology.Mesh) ?(rf_size = 8) ~rows ~cols () =
  let pes =
    Array.init (rows * cols) (fun i ->
        let col = i mod cols in
        let base = [ Op.F_alu ] in
        let base = if i mod 2 = 0 then Op.F_mul :: base else base in
        let base = if col = 0 then Op.F_mem :: Op.F_io :: base else base in
        Pe.make ~rf_size base)
  in
  make
    ~name:(Printf.sprintf "adres-%dx%d-%s" rows cols (Topology.to_string topology))
    ~rows ~cols ~topology pes

(* Single full-featured PE: the "CPU-like" end of the Fig. 1 spectrum
   (pure temporal computation). *)
let single_pe ?(rf_size = 16) () =
  make ~name:"single-pe" ~rows:1 ~cols:1 ~topology:Topology.Mesh
    (Array.make 1 (Pe.make ~rf_size [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ]))

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %dx%d %s\n" t.name t.rows t.cols (Topology.to_string t.topology));
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      let i = index t ~row:r ~col:c in
      Buffer.add_string buf (Printf.sprintf "  PE(%d,%d) %s\n" r c (Pe.to_string t.pes.(i)))
    done
  done;
  Buffer.contents buf

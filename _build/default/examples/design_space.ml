(* Design-space walk: achieved II, utilization and energy proxy of one
   kernel across array sizes and interconnect topologies — the
   architecture-side levers the survey's Section I/IV discuss.

     dune exec examples/design_space.exe                               *)

let () =
  let k = Ocgra_workloads.Kernels.fir4 () in
  Printf.printf "kernel: %s (%s)\n\n" k.name k.description;
  let sizes = [ (2, 2); (3, 3); (4, 4); (6, 6) ] in
  let topologies =
    [ Ocgra_arch.Topology.Mesh; Ocgra_arch.Topology.Torus; Ocgra_arch.Topology.Diagonal;
      Ocgra_arch.Topology.One_hop ]
  in
  let rows = ref [] in
  List.iter
    (fun (r, c) ->
      List.iter
        (fun topo ->
          let cgra = Ocgra_arch.Cgra.uniform ~topology:topo ~rows:r ~cols:c () in
          let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:20 () in
          let rng = Ocgra_util.Rng.create 17 in
          match Ocgra_mappers.Constructive.map ~restarts:12 p rng with
          | Some m, _, _ ->
              let iters = 16 in
              let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
              let result = Ocgra_sim.Machine.run p m io ~iters in
              let npe = r * c in
              let energy =
                Ocgra_sim.Energy.of_mapping_run k.dfg ~npe ~iters result.Ocgra_sim.Machine.stats
              in
              let cost = Ocgra_core.Cost.of_mapping p m in
              rows :=
                [|
                  Printf.sprintf "%dx%d" r c;
                  Ocgra_arch.Topology.to_string topo;
                  string_of_int m.Ocgra_core.Mapping.ii;
                  Printf.sprintf "%.0f%%" (100.0 *. cost.fu_utilization);
                  Printf.sprintf "%.1f" energy;
                  Printf.sprintf "%.3f" (Ocgra_sim.Energy.efficiency ~energy ~iters);
                |]
                :: !rows
          | None, _, _ ->
              rows :=
                [| Printf.sprintf "%dx%d" r c; Ocgra_arch.Topology.to_string topo; "-"; "-"; "-"; "-" |]
                :: !rows)
        topologies)
    sizes;
  Ocgra_util.Table.print
    ~headers:[| "array"; "topology"; "II"; "FU util"; "energy/16 iters"; "iters/energy" |]
    (List.rev !rows)

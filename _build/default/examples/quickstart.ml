(* Quickstart: the complete Fig. 3 flow on the dot-product kernel.

   front-end (mini-language) -> CDFG -> loop-body DFG -> spatial and
   temporal mapping -> configuration contexts -> cycle-accurate
   simulation checked against the reference interpreter.

     dune exec examples/quickstart.exe                                *)

open Ocgra_dfg
module P = Prog_ast

let () =
  (* 1. Source program: for i = 0..size-1 { sum += A[i] * B[i] } *)
  let program =
    [
      P.Assign ("sum", P.Int 0);
      P.For
        ( "i",
          P.Int 0,
          P.Var "size",
          [ P.Assign ("sum", P.Bin (Op.Add, P.Var "sum", P.Bin (Op.Mul, P.Read ("A", P.Var "i"), P.Read ("B", P.Var "i")))) ] );
      P.Emit ("sum", P.Var "sum");
    ]
  in
  print_endline "=== Front-end: CDFG (the basic blocks of Fig. 3) ===";
  let cdfg = Prog.to_cdfg program in
  print_string (Cdfg.to_string cdfg);

  (* 2. Middle-end: the loop body as a DFG with loop-carried edges *)
  print_endline "\n=== Loop-body DFG ===";
  let kernel =
    Prog.loop_body_dfg ~init:[ ("sum", 0) ] ~ivar:"i" ~lo:0
      [
        P.Assign ("sum", P.Bin (Op.Add, P.Var "sum", P.Bin (Op.Mul, P.Read ("A", P.Var "i"), P.Read ("B", P.Var "i"))));
        P.Emit ("sum", P.Var "sum");
      ]
  in
  let dfg = kernel.Prog.dfg in
  Printf.printf "%d operations, %d dependences, RecMII = %d\n" (Dfg.node_count dfg)
    (Dfg.edge_count dfg) (Dfg.rec_mii dfg);
  print_string (Dfg.to_dot dfg);

  (* 3. Back-end: temporal mapping on a 4x4 mesh *)
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let p = Ocgra_core.Problem.temporal ~init:kernel.Prog.init ~dfg ~cgra () in
  let rng = Ocgra_util.Rng.create 42 in
  (match Ocgra_mappers.Constructive.map p rng with
  | None, _, _ -> print_endline "temporal mapping failed"
  | Some m, attempts, at_mii ->
      Printf.printf "\n=== Temporal mapping: II = %d (MII = %d, %d attempts%s) ===\n"
        m.Ocgra_core.Mapping.ii
        (Ocgra_core.Mii.mii dfg cgra)
        attempts
        (if at_mii then ", optimal" else "");
      print_string (Ocgra_core.Mapping.to_grid m dfg cgra);
      (match Ocgra_core.Check.validate p m with
      | [] -> print_endline "checker: mapping is valid"
      | v -> List.iter print_endline v);
      (* 4. The hardware contract: configuration contexts (Fig. 2c) *)
      print_endline "\n=== Configuration contexts ===";
      let build = Ocgra_core.Contexts.of_mapping p m in
      print_string (Ocgra_core.Contexts.to_string p build);
      (* 5. Cycle-accurate simulation vs the reference interpreter *)
      let iters = 10 in
      let a = Array.init 32 (fun i -> i + 1) and b = Array.init 32 (fun i -> (2 * i) - 3) in
      let streams = [ ("i", Array.init iters (fun i -> i)) ] in
      let memory = [ ("A", a); ("B", b) ] in
      let io = Ocgra_sim.Machine.io_of_streams ~memory streams in
      let result = Ocgra_sim.Machine.run p m io ~iters in
      let sim_sum = Ocgra_sim.Machine.output_stream result "sum" in
      let env = Eval.env_of_streams ~memory streams in
      let ref_result = Eval.run ~init:kernel.Prog.init dfg env ~iters in
      let ref_sum = Eval.output_stream ref_result "sum" in
      Printf.printf "\n=== Simulation: %d iterations in %d cycles ===\n" iters
        result.Ocgra_sim.Machine.stats.cycles;
      Printf.printf "simulated sum stream:  %s\n"
        (String.concat " " (List.map string_of_int sim_sum));
      Printf.printf "reference sum stream:  %s\n"
        (String.concat " " (List.map string_of_int ref_sum));
      print_endline (if sim_sum = ref_sum then "MATCH" else "MISMATCH"));

  (* 6. Spatial mapping of the same kernel (Fig. 3 left) *)
  let cgra_d =
    Ocgra_arch.Cgra.uniform ~topology:Ocgra_arch.Topology.Diagonal ~rows:4 ~cols:4 ()
  in
  let ps = Ocgra_core.Problem.spatial ~init:kernel.Prog.init ~dfg ~cgra:cgra_d () in
  match Ocgra_mappers.Constructive.map ~restarts:32 ps rng with
  | Some m, _, _ ->
      Printf.printf "\n=== Spatial mapping (one op per PE, II = 1) ===\n";
      print_string (Ocgra_core.Mapping.to_grid m dfg cgra_d)
  | None, _, _ -> print_endline "\nspatial mapping failed (recurrence too tight for II = 1)"

(* Data mapping: bank conflicts versus bank count, and greedy vs ILP
   array-to-bank placement (Section III.C of the paper).

     dune exec examples/memory_banking.exe                             *)

let sweep title accesses =
  Printf.printf "%s\n" title;
  let rows =
    List.map
      (fun (banks, conflicts) -> [| string_of_int banks; string_of_int conflicts |])
      (Ocgra_mem.Bank.conflicts_by_banks ~bank_counts:[ 1; 2; 4; 8 ] ~ii:2 ~iters:32 accesses)
  in
  Ocgra_util.Table.print ~headers:[| "banks"; "stall cycles" |] rows

let () =
  (* a stencil touching three arrays; img and coef are naively aligned
     to the same bank (bases 0 and 64), which no bank count fixes *)
  sweep "naive aligned bases (img@0, coef@64, out@128), 32 iters at II=2:"
    [
      (0, { Ocgra_mem.Bank.array_base = 0; stride = 1; offset = 0 }); (* img[i]   @ slot 0 *)
      (0, { Ocgra_mem.Bank.array_base = 64; stride = 1; offset = 0 }); (* coef[i] @ slot 0 *)
      (1, { Ocgra_mem.Bank.array_base = 128; stride = 1; offset = 0 }); (* out[i] @ slot 1 *)
      (1, { Ocgra_mem.Bank.array_base = 0; stride = 1; offset = 1 }); (* img[i+1] @ slot 1 *)
    ];
  (* data placement staggers the bases so same-slot arrays never share
     a bank: the conflict-free mapping of [68] *)
  sweep "\nafter conflict-aware placement (coef offset to the other bank):"
    [
      (0, { Ocgra_mem.Bank.array_base = 0; stride = 1; offset = 0 });
      (0, { Ocgra_mem.Bank.array_base = 65; stride = 1; offset = 0 });
      (1, { Ocgra_mem.Bank.array_base = 128; stride = 1; offset = 0 });
      (1, { Ocgra_mem.Bank.array_base = 0; stride = 1; offset = 1 });
    ];

  (* array-to-bank placement *)
  let arrays =
    [
      { Ocgra_mem.Placement.name = "img"; size = 64; slots = [ 0; 1 ] };
      { Ocgra_mem.Placement.name = "coef"; size = 64; slots = [ 0 ] };
      { Ocgra_mem.Placement.name = "out"; size = 64; slots = [ 1 ] };
      { Ocgra_mem.Placement.name = "hist"; size = 32; slots = [ 0; 1 ] };
    ]
  in
  print_endline "\narray-to-bank placement on 2 banks:";
  let greedy = Ocgra_mem.Placement.greedy ~banks:2 arrays in
  Printf.printf "greedy : %s   (conflict weight %d)\n"
    (String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%s->bank%d" a b) greedy))
    (Ocgra_mem.Placement.cost arrays greedy);
  match Ocgra_mem.Placement.ilp ~banks:2 arrays with
  | Some exact ->
      Printf.printf "ILP    : %s   (conflict weight %d)\n"
        (String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%s->bank%d" a b) exact))
        (Ocgra_mem.Placement.cost arrays exact)
  | None -> print_endline "ILP    : solver budget exceeded"

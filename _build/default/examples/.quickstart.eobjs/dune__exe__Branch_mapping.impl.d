examples/branch_mapping.ml: Array Cdfg List Ocgra_arch Ocgra_cf Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_util Op Printf Prog Prog_ast

examples/loop_pipelining.mli:

examples/nested_loops.mli:

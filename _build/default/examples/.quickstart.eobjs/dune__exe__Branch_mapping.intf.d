examples/branch_mapping.mli:

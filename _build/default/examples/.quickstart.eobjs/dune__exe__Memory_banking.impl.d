examples/memory_banking.ml: List Ocgra_mem Ocgra_util Printf String

examples/quickstart.mli:

examples/design_space.ml: List Ocgra_arch Ocgra_core Ocgra_mappers Ocgra_sim Ocgra_util Ocgra_workloads Printf

examples/nested_loops.ml: List Ocgra_arch Ocgra_cf Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_util Printf

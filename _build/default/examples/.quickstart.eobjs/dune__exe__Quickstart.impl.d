examples/quickstart.ml: Array Cdfg Dfg Eval List Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_sim Ocgra_util Op Printf Prog Prog_ast String

examples/memory_banking.mli:

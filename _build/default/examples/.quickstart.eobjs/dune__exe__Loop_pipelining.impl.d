examples/loop_pipelining.ml: List Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_sim Ocgra_util Ocgra_workloads Printf

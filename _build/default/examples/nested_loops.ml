(* Nested loops: the joint affine-transformation + pipelining flow of
   [45] (Yin et al.) on a 2-deep stencil nest, then unrolling the freed
   inner loop for throughput.

     dune exec examples/nested_loops.exe                               *)

module Nest = Ocgra_cf.Nest
module P = Ocgra_dfg.Prog_ast
module Op = Ocgra_dfg.Op

let () =
  (* for i { for j { A[i][j] = A[i-1][j+2] * 3 + x[j] } }:
     one dependence with distance vector (1, -2) and a 2-op chain *)
  let deps = [ { Nest.d_outer = 1; d_inner = -2; latency = 2 } ] in
  print_endline "nest: A[i][j] = A[i-1][j+2] * 3 + x[j]   (dependence vector (1,-2), latency 2)\n";
  let rows =
    List.map
      (fun (t, ok, mii) ->
        [|
          Nest.transform_to_string t;
          (if ok then "legal" else "illegal");
          (match mii with Some m -> string_of_int m | None -> "-");
        |])
      (Nest.report deps)
  in
  Ocgra_util.Table.print ~headers:[| "transform"; "legality"; "inner RecMII bound" |] rows;
  (match Nest.best deps with
  | Some (mii, t) ->
      Printf.printf "\nchosen: %s (inner RecMII bound %d)\n" (Nest.transform_to_string t) mii
  | None -> print_endline "no legal transform");

  (* with the dependence carried by the outer loop, the inner body is a
     recurrence-free kernel: build it, map it, then unroll it *)
  print_endline "\ninner-loop kernel after transformation (loads from the previous outer row):";
  let kernel =
    Ocgra_dfg.Prog.loop_body_dfg ~ivar:"j" ~lo:0
      [
        P.Assign
          ( "v",
            P.Bin
              ( Op.Add,
                P.Bin (Op.Mul, P.Read ("prev_row", P.Bin (Op.Add, P.Var "j", P.Int 2)), P.Int 3),
                P.Read ("x", P.Var "j") ) );
        P.Write ("row", P.Var "j", P.Var "v");
        P.Emit ("v", P.Var "v");
      ]
  in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let map_and_report label dfg =
    let p = Ocgra_core.Problem.temporal ~dfg ~cgra ~max_ii:24 () in
    let rng = Ocgra_util.Rng.create 19 in
    match Ocgra_mappers.Constructive.map ~restarts:12 p rng with
    | Some m, _, _ ->
        Printf.printf "  %-12s %d ops -> II=%d (MII %d)\n" label
          (Ocgra_dfg.Dfg.node_count dfg) m.Ocgra_core.Mapping.ii
          (Ocgra_core.Mii.mii dfg cgra)
    | None, _, _ -> Printf.printf "  %-12s failed\n" label
  in
  map_and_report "as written" kernel.Ocgra_dfg.Prog.dfg;
  map_and_report "unrolled x2" (Ocgra_dfg.Transform.unroll kernel.Ocgra_dfg.Prog.dfg 2);

  (* the two-level hardware loop that keeps the whole nest on the array *)
  let model = Ocgra_cf.Hw_loop.default_overhead in
  let inner = 32 and outer = 16 in
  Printf.printf
    "\nwhole nest on the array (inner=%d, outer=%d, II=2, fill 6 cycles):\n\
    \  host relaunch per outer pass : %d cycles\n\
    \  two-level hardware loop      : %d cycles\n"
    inner outer
    (Ocgra_cf.Hw_loop.inner_only_cycles model ~ii:2 ~schedule_length:6 ~inner ~outer)
    (Ocgra_cf.Hw_loop.nested_hw_cycles model ~ii:2 ~schedule_length:6 ~inner ~outer)

(* Control-flow mapping: the four if-then-else schemes of Section
   III.B.1 compared on a clipping kernel, plus the host-managed CDFG
   alternative.

     dune exec examples/branch_mapping.exe                             *)

open Ocgra_dfg
module P = Prog_ast

let () =
  (* kernel with overlapping branches: both sides need 3x, so the
     schemes differentiate (partial predication shares it, full cannot) *)
  let shared = P.Bin (Op.Mul, P.Var "x", P.Int 3) in
  let ite =
    {
      Ocgra_cf.Predication.cond = P.Bin (Op.Lt, P.Var "x", P.Var "t");
      then_branch = [ ("y", P.Bin (Op.Add, shared, P.Int 9)) ];
      else_branch = [ ("y", P.Bin (Op.Sub, shared, P.Int 7)) ];
    }
  in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  print_endline "branch kernel: y = x < t ? 3x + 9 : 3x - 7\n";
  let rows =
    List.map
      (fun (scheme, dfg, ops, depth) ->
        let p = Ocgra_core.Problem.temporal ~dfg ~cgra () in
        let rng = Ocgra_util.Rng.create 5 in
        let result =
          match Ocgra_mappers.Constructive.map p rng with
          | Some m, _, _ -> Printf.sprintf "II=%d" m.Ocgra_core.Mapping.ii
          | None, _, _ -> "fail"
        in
        [|
          Ocgra_cf.Predication.scheme_to_string scheme;
          string_of_int ops;
          string_of_int depth;
          result;
        |])
      (Ocgra_cf.Predication.compare_schemes ite)
  in
  Ocgra_util.Table.print
    ~headers:[| "ITE scheme"; "ops"; "critical path"; "mapped" |]
    rows;

  (* the host-managed alternative: map each basic block separately *)
  print_endline "\nHost-managed CDFG execution (control on the host processor):";
  let program =
    [
      P.For
        ( "i",
          P.Int 0,
          P.Int 16,
          [
            P.Assign ("x", P.Read ("src", P.Var "i"));
            P.If
              ( P.Bin (Op.Lt, P.Int 127, P.Var "x"),
                [ P.Assign ("y", P.Int 127) ],
                [ P.Assign ("y", P.Bin (Op.Add, P.Bin (Op.Mul, P.Var "x", P.Int 3), P.Int 1)) ] );
            P.Write ("dst", P.Var "i", P.Var "y");
          ] );
    ]
  in
  let cdfg = Prog.to_cdfg program in
  print_string (Cdfg.to_string cdfg);
  let memory = [ ("src", Array.init 16 (fun i -> i * 20)); ("dst", Array.make 16 0) ] in
  let trace, _outputs, _vars = Ocgra_cf.Host_exec.interpret cdfg ~memory in
  let plan = Ocgra_cf.Host_exec.make_plan cdfg in
  Printf.printf
    "dynamic trace: %d block launches; host-managed overhead = %d cycles\n\
     (predicated versions pay none of this: the branch runs inside the array)\n"
    (List.length trace)
    (Ocgra_cf.Host_exec.trace_cost plan trace)

(* Loop pipelining: modulo-schedule the FIR and IIR kernels with every
   temporal mapper, compare the achieved II against MII, and verify the
   winner end-to-end in the simulator.

     dune exec examples/loop_pipelining.exe                            *)

let () =
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let kernels =
    [ Ocgra_workloads.Kernels.fir4 (); Ocgra_workloads.Kernels.iir2 ();
      Ocgra_workloads.Kernels.dot_product () ]
  in
  List.iter
    (fun (k : Ocgra_workloads.Kernels.t) ->
      let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:16 () in
      let mii = Ocgra_core.Mii.mii k.dfg cgra in
      Printf.printf "\n%s (%s): %d ops, MII = %d (ResMII %d, RecMII %d)\n" k.name k.description
        (Ocgra_dfg.Dfg.node_count k.dfg) mii
        (Ocgra_core.Mii.res_mii k.dfg cgra)
        (Ocgra_core.Mii.rec_mii k.dfg);
      let rows = ref [] in
      let best = ref None in
      List.iter
        (fun (mapper : Ocgra_core.Mapper.t) ->
          match mapper.scope with
          | Ocgra_core.Taxonomy.Spatial_mapping -> ()
          | _ ->
              let o = Ocgra_core.Mapper.run mapper ~seed:11 p in
              let cell =
                match o.mapping with
                | Some m ->
                    let c = Ocgra_core.Cost.of_mapping p m in
                    (match !best with
                    | None -> best := Some (mapper.name, m)
                    | Some (_, b) ->
                        if m.Ocgra_core.Mapping.ii < b.Ocgra_core.Mapping.ii then
                          best := Some (mapper.name, m));
                    Printf.sprintf "II=%d len=%d%s" c.ii c.schedule_length
                      (if o.proven_optimal then " (optimal)" else "")
                | None -> "fail"
              in
              rows := [| mapper.name; cell; Printf.sprintf "%.2fs" o.elapsed_s |] :: !rows)
        Ocgra_mappers.Registry.all;
      Ocgra_util.Table.print ~headers:[| "mapper"; "result"; "time" |] (List.rev !rows);
      match !best with
      | None -> print_endline "no mapper succeeded"
      | Some (name, m) ->
          let iters = 12 in
          let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
          let result = Ocgra_sim.Machine.run p m io ~iters in
          let reference = Ocgra_workloads.Kernels.eval_reference k ~iters in
          let ok =
            List.for_all
              (fun o ->
                Ocgra_sim.Machine.output_stream result o = Ocgra_dfg.Eval.output_stream reference o)
              k.outputs
          in
          Printf.printf "best: %s at II=%d; simulation %s (%d cycles for %d iterations)\n" name
            m.Ocgra_core.Mapping.ii
            (if ok then "matches the reference" else "MISMATCH")
            result.Ocgra_sim.Machine.stats.cycles iters)
    kernels
